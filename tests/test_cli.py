"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.experiments import EXPERIMENTS


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table99"])

    def test_defaults(self):
        args = build_parser().parse_args(["run", "table2"])
        assert args.scale == "smoke"
        assert args.output is None


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in out

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "table2", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Train" in out

    def test_run_writes_output_file(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        assert main(["run", "fig5", "--scale", "smoke", "--output", str(target)]) == 0
        assert target.exists()
        assert "Fig. 5" in target.read_text()
        assert str(target) in capsys.readouterr().out

    def test_run_training_experiment_smoke(self, capsys):
        assert main(["run", "fig10", "--scale", "smoke"]) == 0
        assert "case study" in capsys.readouterr().out


class TestParseSymptoms:
    @pytest.fixture()
    def vocab(self):
        from repro.cli import _parse_symptoms  # noqa: F401 - import check
        from repro.experiments.datasets import experiment_split

        train, _ = experiment_split("smoke")
        return train.symptom_vocab

    def test_integer_ids(self, vocab):
        from repro.cli import _parse_symptoms

        assert _parse_symptoms("0 3 7", vocab) == [0, 3, 7]

    def test_tokens(self, vocab):
        from repro.cli import _parse_symptoms

        tokens = [vocab.token_of(2), vocab.token_of(5)]
        assert _parse_symptoms(" ".join(tokens), vocab) == [2, 5]

    def test_mixed_tokens_and_ids(self, vocab):
        from repro.cli import _parse_symptoms

        assert _parse_symptoms(f"{vocab.token_of(4)} 1", vocab) == [4, 1]

    def test_unknown_token_rejected(self, vocab):
        from repro.cli import _parse_symptoms

        with pytest.raises(ValueError, match="unknown symptom token"):
            _parse_symptoms("definitely_not_a_symptom", vocab)

    def test_out_of_range_id_rejected(self, vocab):
        from repro.cli import _parse_symptoms

        with pytest.raises(ValueError, match="out of range"):
            _parse_symptoms("99999", vocab)
        with pytest.raises(ValueError, match="out of range"):
            _parse_symptoms("-1", vocab)

    def test_empty_rejected(self, vocab):
        from repro.cli import _parse_symptoms

        with pytest.raises(ValueError, match="no symptoms"):
            _parse_symptoms("   ", vocab)


class TestModelsCommand:
    def test_models_lists_registry(self, capsys):
        from repro.models import MODEL_REGISTRY

        assert main(["models", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        for name in MODEL_REGISTRY.names():
            assert name in out
        assert "SMGCNConfig" in out


class TestTrainCommand:
    def test_train_requires_checkpoint(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--model", "SMGCN"])

    def test_train_writes_checkpoint(self, tmp_path, capsys):
        target = tmp_path / "smgcn.npz"
        code = main(
            ["train", "--model", "SMGCN", "--scale", "smoke", "--epochs", "1",
             "--checkpoint", str(target), "--evaluate"]
        )
        assert code == 0
        assert target.exists()
        out = capsys.readouterr().out
        assert "trained SMGCN" in out
        assert str(target) in out
        assert "p@5=" in out

    def test_train_profile_prints_phase_breakdown(self, tmp_path, capsys):
        target = tmp_path / "profiled.npz"
        code = main(
            ["train", "--model", "SMGCN", "--scale", "smoke", "--epochs", "2",
             "--checkpoint", str(target), "--profile"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "phase profile:" in out
        assert "forward=" in out
        assert "gradient pool:" in out

    def test_train_verbose_prints_epoch_lines(self, tmp_path, capsys):
        target = tmp_path / "verbose.npz"
        code = main(
            ["train", "--model", "SMGCN", "--scale", "smoke", "--epochs", "2",
             "--checkpoint", str(target), "--verbose"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[Trainer] epoch 1/2" in out
        assert "[Trainer] epoch 2/2" in out
        assert "pool_hits=" in out

    def test_train_unknown_model(self, tmp_path, capsys):
        code = main(["train", "--model", "DeepHerb", "--checkpoint", str(tmp_path / "x.npz")])
        assert code == 2
        assert "registered models" in capsys.readouterr().err

    def test_train_paper_params(self, tmp_path, capsys):
        target = tmp_path / "paper.npz"
        code = main(
            ["train", "--model", "GC-MC", "--scale", "smoke", "--epochs", "1",
             "--paper-params", "--checkpoint", str(target)]
        )
        assert code == 0
        assert target.exists()

    def test_train_paper_params_keeps_profile_epochs(self, tmp_path, capsys):
        from repro.experiments.datasets import get_profile

        code = main(
            ["train", "--model", "GC-MC", "--scale", "smoke", "--paper-params",
             "--checkpoint", str(tmp_path / "p.npz")]
        )
        assert code == 0
        # lr/lambda come from Table III but the epoch/batch schedule stays the
        # profile's, not TrainerConfig's defaults
        assert f"for {get_profile('smoke').epochs} epochs" in capsys.readouterr().out

    def test_train_unwritable_checkpoint_fails_before_training(self, tmp_path, capsys, monkeypatch):
        # a regular file as the parent "directory" is unwritable for any user
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")

        def boom(*args, **kwargs):
            raise AssertionError("training must not start when the target is unwritable")

        monkeypatch.setattr("repro.training.trainer.Trainer.fit", boom)
        code = main(
            ["train", "--model", "SMGCN", "--scale", "smoke",
             "--checkpoint", str(blocker / "m.npz")]
        )
        assert code == 2
        assert "cannot write checkpoint" in capsys.readouterr().err

    def test_train_paper_params_rejects_non_trainer_model(self, tmp_path, capsys):
        code = main(
            ["train", "--model", "HC-KGETM", "--paper-params",
             "--checkpoint", str(tmp_path / "x.npz")]
        )
        assert code == 2
        assert "no trainer settings" in capsys.readouterr().err


class TestCheckpointServing:
    @pytest.fixture(scope="class")
    def checkpoint(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-ckpt") / "smgcn.npz"
        assert (
            main(["train", "--model", "SMGCN", "--scale", "smoke", "--epochs", "1",
                  "--checkpoint", str(path)]) == 0
        )
        return path

    def test_predict_from_checkpoint_does_not_train(self, checkpoint, capsys, monkeypatch):
        def boom(*args, **kwargs):
            raise AssertionError("Trainer.fit must not run for --checkpoint predict")

        monkeypatch.setattr("repro.training.trainer.Trainer.fit", boom)
        code = main(["predict", "--checkpoint", str(checkpoint), "--symptoms", "0 3", "--k", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "symptoms: symptom_000 symptom_003" in out
        assert out.count("score=") == 2

    def test_predict_checkpoint_matches_in_process_scores(self, checkpoint, capsys):
        from repro.api import Pipeline

        assert main(["predict", "--checkpoint", str(checkpoint), "--symptoms", "0 3"]) == 0
        out = capsys.readouterr().out
        pipeline = Pipeline.load(checkpoint)
        expected = pipeline.recommend([0, 3], k=10)
        for herb_id, score in zip(expected.herb_ids, expected.scores):
            assert f"id={herb_id}" in out
            assert f"score={score:+.4f}" in out

    def test_serve_from_checkpoint(self, checkpoint, capsys, monkeypatch):
        import io

        def boom(*args, **kwargs):
            raise AssertionError("Trainer.fit must not run for --checkpoint serve")

        monkeypatch.setattr("repro.training.trainer.Trainer.fit", boom)
        monkeypatch.setattr("sys.stdin", io.StringIO("0 3\n\n"))
        code = main(["serve", "--checkpoint", str(checkpoint), "--k", "3"])
        assert code == 0
        captured = capsys.readouterr()
        herb_lines = [line for line in captured.out.splitlines() if line.startswith("herb_")]
        assert len(herb_lines) == 1
        assert str(checkpoint) in captured.err

    def test_serve_stdin_burst_preserves_input_ordering(self, checkpoint, capsys, monkeypatch):
        """Piped multi-line input: response N answers request line N, always."""
        import io

        from repro.api import Pipeline

        requests = ["0 3", "1 2", "not_a_symptom", "4", "k=2 0 1", "2 3"]
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(requests) + "\n"))
        code = main(["serve", "--checkpoint", str(checkpoint), "--k", "3"])
        assert code == 0
        captured = capsys.readouterr()
        responses = captured.out.splitlines()
        assert len(responses) == len(requests)
        pipeline = Pipeline.load(checkpoint)
        for request, response in zip(requests, responses):
            if request == "not_a_symptom":
                assert response == "error: unknown symptom token 'not_a_symptom'"
            else:
                k = 2 if request.startswith("k=") else 3
                query = request[len("k=2 "):] if request.startswith("k=") else request
                expected = pipeline.recommend(query, k=k)
                assert response == " ".join(pipeline.decode_herbs(expected))
        assert "serving stats:" in captured.err

    @pytest.mark.parametrize("frontend", ["async", "threads"])
    def test_serve_port_round_trip_both_frontends(
        self, checkpoint, capsys, monkeypatch, frontend
    ):
        """`repro serve --port 0` answers over TCP identically on either
        front-end; the listening line names the front-end in use."""
        import re
        import socket

        from repro.api import Pipeline

        observed = {}

        def query_then_shutdown():
            err = capsys.readouterr().err
            observed["listening"] = err
            match = re.search(r"listening on ([\d.]+):(\d+)", err)
            assert match, f"no listening line in: {err!r}"
            address = (match.group(1), int(match.group(2)))
            with socket.create_connection(address, timeout=10) as connection:
                reader = connection.makefile("r", encoding="utf-8")
                connection.sendall(b"0 3\n")
                observed["answer"] = reader.readline().strip()
                connection.sendall(b"stats\n")
                observed["stats"] = reader.readline().strip()

        monkeypatch.setattr("repro.cli._wait_for_shutdown_signal", query_then_shutdown)
        code = main(["serve", "--checkpoint", str(checkpoint), "--k", "3",
                     "--port", "0", "--frontend", frontend])
        assert code == 0
        assert f"frontend={frontend}" in observed["listening"]
        pipeline = Pipeline.load(checkpoint)
        expected = " ".join(pipeline.decode_herbs(pipeline.recommend("0 3", k=3)))
        assert observed["answer"] == expected
        assert observed["stats"].startswith("requests=1 ")
        assert "connections=1" in observed["stats"]

    def test_predict_missing_checkpoint_errors_cleanly(self, capsys):
        code = main(["predict", "--checkpoint", "/nonexistent/x.npz", "--symptoms", "0"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_predict_checkpoint_scale_mismatch_refused(self, checkpoint, capsys):
        code = main(
            ["predict", "--checkpoint", str(checkpoint), "--scale", "default", "--symptoms", "0"]
        )
        assert code == 2
        assert "mismatch" in capsys.readouterr().err

    def test_predict_checkpoint_model_conflict_refused(self, checkpoint, capsys):
        code = main(
            ["predict", "--checkpoint", str(checkpoint), "--model", "NGCF", "--symptoms", "0"]
        )
        assert code == 2
        assert "holds 'SMGCN', not 'NGCF'" in capsys.readouterr().err

    def test_predict_checkpoint_training_flags_refused(self, checkpoint, capsys):
        for flag in (["--epochs", "1"], ["--seed", "7"]):
            code = main(["predict", "--checkpoint", str(checkpoint), "--symptoms", "0", *flag])
            assert code == 2
            assert "only apply when training" in capsys.readouterr().err

    def test_train_epochs_refused_for_self_fitting_model(self, tmp_path, capsys):
        code = main(
            ["train", "--model", "HC-KGETM", "--scale", "smoke", "--epochs", "5",
             "--checkpoint", str(tmp_path / "x.npz")]
        )
        assert code == 2
        assert "ignores TrainerConfig" in capsys.readouterr().err


class TestPredictServe:
    def test_predict_requires_symptoms(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["predict"])

    def test_predict_smoke(self, capsys):
        code = main(
            ["predict", "--scale", "smoke", "--symptoms", "0 3", "--k", "2", "--epochs", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "symptoms: symptom_000 symptom_003" in out
        assert out.count("score=") == 2

    def test_predict_bad_symptom_exits_before_training(self, capsys):
        code = main(["predict", "--scale", "smoke", "--symptoms", "no_such_token"])
        assert code == 2
        assert "unknown symptom token" in capsys.readouterr().err

    def test_predict_invalid_k(self, capsys):
        code = main(["predict", "--scale", "smoke", "--symptoms", "0", "--k", "0"])
        assert code == 2
        assert "--k must be a positive integer" in capsys.readouterr().err

    def test_serve_round_trip(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("0 3\nbad_token\n5\n\n"))
        code = main(["serve", "--scale", "smoke", "--k", "3", "--epochs", "1"])
        assert code == 0
        captured = capsys.readouterr()
        responses = captured.out.splitlines()
        # one response line per request line, in input order: a bad request
        # answers with an error *on stdout* so pipe clients stay in sync
        assert len(responses) == 3
        assert responses[0].startswith("herb_") and len(responses[0].split()) == 3
        assert responses[1] == "error: unknown symptom token 'bad_token'"
        assert responses[2].startswith("herb_") and len(responses[2].split()) == 3
        assert "ready:" in captured.err
        assert "serving stats:" in captured.err

    def test_serve_batching_flags_validated(self, capsys):
        code = main(["serve", "--scale", "smoke", "--max-batch", "0"])
        assert code == 2
        assert "--max-batch" in capsys.readouterr().err
        code = main(["serve", "--scale", "smoke", "--max-wait-ms", "-1"])
        assert code == 2
        assert "--max-wait-ms" in capsys.readouterr().err

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port is None
        assert args.host == "127.0.0.1"
        assert args.max_batch == 64
        assert args.max_wait_ms == 5.0
        assert args.shards == 1
        assert args.backend is None
        assert args.workers is None

    def test_help_epilog_documents_train_checkpoint(self):
        help_text = build_parser().format_help()
        assert "train --model SMGCN" in help_text
        assert "--checkpoint" in help_text
        assert "--shards" in help_text
        assert "docs/SERVING.md" in help_text


class TestAdmissionFlags:
    def test_serve_parser_frontend_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.frontend == "async"
        assert args.max_connections is None
        assert args.max_pending is None
        assert args.client_quota is None
        assert args.idle_timeout is None

    def test_admission_knobs_require_port(self, capsys):
        code = main(["serve", "--scale", "smoke", "--max-connections", "10"])
        assert code == 2
        assert "--max-connections" in capsys.readouterr().err

    def test_admission_knobs_require_async_frontend(self, capsys):
        code = main(["serve", "--scale", "smoke", "--port", "0",
                     "--frontend", "threads", "--client-quota", "4"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--client-quota" in err and "async" in err

    def test_admission_knob_values_validated(self, capsys):
        for flag in ("--max-connections", "--max-pending", "--client-quota"):
            code = main(["serve", "--scale", "smoke", "--port", "0", flag, "0"])
            assert code == 2
            assert flag in capsys.readouterr().err
        code = main(["serve", "--scale", "smoke", "--port", "0", "--idle-timeout", "-1"])
        assert code == 2
        assert "--idle-timeout" in capsys.readouterr().err

    def test_help_epilog_documents_admission(self):
        help_text = build_parser().format_help()
        assert "--frontend" in help_text
        assert "--max-connections" in help_text


class TestShardingFlags:
    def test_invalid_shards(self, capsys):
        code = main(["predict", "--scale", "smoke", "--symptoms", "0", "--shards", "0"])
        assert code == 2
        assert "--shards" in capsys.readouterr().err

    def test_invalid_workers(self, capsys):
        code = main(["predict", "--scale", "smoke", "--symptoms", "0", "--workers", "-2"])
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_backend_without_shards_refused(self, capsys):
        code = main(
            ["predict", "--scale", "smoke", "--symptoms", "0", "--backend", "threads"]
        )
        assert code == 2
        assert "--shards >= 2" in capsys.readouterr().err
        code = main(["predict", "--scale", "smoke", "--symptoms", "0", "--workers", "2"])
        assert code == 2
        assert "--shards >= 2" in capsys.readouterr().err

    def test_unknown_backend_fails_before_training(self, capsys, monkeypatch):
        def boom(*args, **kwargs):
            raise AssertionError("training must not start for an unknown backend")

        monkeypatch.setattr("repro.training.trainer.Trainer.fit", boom)
        code = main(["predict", "--scale", "smoke", "--symptoms", "0", "--backend", "cuda"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown backend 'cuda'" in err
        assert "numpy" in err and "threads" in err

    def test_predict_with_shards_matches_unsharded(self, capsys):
        argv = ["predict", "--scale", "smoke", "--symptoms", "0 3", "--k", "4",
                "--epochs", "1", "--seed", "0"]
        assert main(argv) == 0
        unsharded = capsys.readouterr().out
        assert (
            main(argv + ["--shards", "4", "--backend", "threads", "--workers", "2"]) == 0
        )
        assert capsys.readouterr().out == unsharded

    def test_serve_with_shards(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("0 3\n\n"))
        code = main(
            ["serve", "--scale", "smoke", "--k", "3", "--epochs", "1",
             "--shards", "2", "--backend", "threads"]
        )
        assert code == 0
        captured = capsys.readouterr()
        responses = captured.out.splitlines()
        assert len(responses) == 1 and responses[0].startswith("herb_")


class TestDistributedFlags:
    """The distributed serving surface: shard-worker verb, processes/remote."""

    def test_shard_worker_parser_defaults(self):
        args = build_parser().parse_args(["shard-worker"])
        assert args.command == "shard-worker"
        assert args.port == 0
        assert args.host == "127.0.0.1"

    def test_serve_parser_worker_addr_accumulates(self):
        args = build_parser().parse_args(
            ["serve", "--shards", "2", "--backend", "remote",
             "--worker-addr", "127.0.0.1:7801", "--worker-addr", "127.0.0.1:7802"]
        )
        assert args.worker_addr == ["127.0.0.1:7801", "127.0.0.1:7802"]

    def test_remote_requires_worker_addr(self, capsys):
        code = main(["predict", "--scale", "smoke", "--symptoms", "0",
                     "--shards", "2", "--backend", "remote"])
        assert code == 2
        assert "--worker-addr" in capsys.readouterr().err

    def test_worker_addr_requires_remote_backend(self, capsys):
        code = main(["predict", "--scale", "smoke", "--symptoms", "0",
                     "--shards", "2", "--backend", "threads",
                     "--worker-addr", "127.0.0.1:7801"])
        assert code == 2
        assert "--backend remote" in capsys.readouterr().err

    def test_worker_addr_conflicts_with_workers(self, capsys):
        code = main(["predict", "--scale", "smoke", "--symptoms", "0",
                     "--shards", "2", "--backend", "remote", "--workers", "2",
                     "--worker-addr", "127.0.0.1:7801"])
        assert code == 2
        assert "conflicts" in capsys.readouterr().err

    def test_bad_worker_addr_fails_before_training(self, capsys, monkeypatch):
        def boom(*args, **kwargs):
            raise AssertionError("training must not start for a bad worker address")

        monkeypatch.setattr("repro.training.trainer.Trainer.fit", boom)
        code = main(["predict", "--scale", "smoke", "--symptoms", "0",
                     "--shards", "2", "--backend", "remote",
                     "--worker-addr", "nowhere"])
        assert code == 2
        assert "host:port" in capsys.readouterr().err

    def test_worker_addr_needs_sharding(self, capsys):
        code = main(["predict", "--scale", "smoke", "--symptoms", "0",
                     "--backend", "remote", "--worker-addr", "127.0.0.1:7801"])
        assert code == 2
        assert "--shards >= 2" in capsys.readouterr().err

    def test_help_epilog_documents_distributed_serving(self):
        help_text = build_parser().format_help()
        assert "shard-worker" in help_text
        assert "--backend remote" in help_text or "backend remote" in help_text

    def test_predict_with_process_pool_matches_unsharded(self, capsys):
        argv = ["predict", "--scale", "smoke", "--symptoms", "0 3", "--k", "4",
                "--epochs", "1", "--seed", "0"]
        assert main(argv) == 0
        unsharded = capsys.readouterr().out
        assert (
            main(argv + ["--shards", "4", "--backend", "processes", "--workers", "2"]) == 0
        )
        assert capsys.readouterr().out == unsharded

    def test_predict_with_remote_workers_matches_unsharded(self, capsys):
        from repro.inference import ShardWorkerServer

        argv = ["predict", "--scale", "smoke", "--symptoms", "0 3", "--k", "4",
                "--epochs", "1", "--seed", "0"]
        assert main(argv) == 0
        unsharded = capsys.readouterr().out
        with ShardWorkerServer() as first, ShardWorkerServer() as second:
            remote_argv = argv + ["--shards", "4", "--backend", "remote"]
            for host, port in (first.address, second.address):
                remote_argv += ["--worker-addr", f"{host}:{port}"]
            assert main(remote_argv) == 0
            assert capsys.readouterr().out == unsharded
            assert first.handler.tasks_executed + second.handler.tasks_executed > 0


class TestModelsJson:
    def test_models_json_is_machine_readable(self, capsys):
        import json

        from repro.models import MODEL_REGISTRY

        assert main(["models", "--json", "--scale", "smoke"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert [record["name"] for record in records] == [
            entry.name for entry in MODEL_REGISTRY.entries()
        ]
        for record in records:
            assert record["config_class"]
            assert record["description"]
            assert isinstance(record["default_config"], dict)

    def test_models_json_matches_registry_config_classes(self, capsys):
        import json

        from repro.models import MODEL_REGISTRY

        assert main(["models", "--json", "--scale", "smoke"]) == 0
        records = {r["name"]: r for r in json.loads(capsys.readouterr().out)}
        for entry in MODEL_REGISTRY.entries():
            assert records[entry.name]["config_class"] == entry.config_class.__name__


class TestMultiModelServeCLI:
    @pytest.fixture(scope="class")
    def two_checkpoints(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("cli-catalog")
        paths = {}
        for name, seed in (("a", 0), ("b", 7)):
            paths[name] = directory / f"smgcn-{name}.npz"
            assert (
                main(["train", "--model", "SMGCN", "--scale", "smoke", "--epochs", "1",
                      "--seed", str(seed), "--checkpoint", str(paths[name])]) == 0
            )
        return paths

    def _no_training(self, monkeypatch):
        def boom(*args, **kwargs):
            raise AssertionError("Trainer.fit must not run for catalog serving")

        monkeypatch.setattr("repro.training.trainer.Trainer.fit", boom)

    def test_serve_catalog_routes_per_request(self, two_checkpoints, capsys, monkeypatch):
        import io

        from repro.api import Pipeline

        self._no_training(monkeypatch)
        requests = ["model=first 0 3", "model=second 0 3", "0 3", "model=nope 0 3"]
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(requests) + "\n"))
        code = main([
            "serve", "--k", "3",
            "--model", f"first={two_checkpoints['a']}",
            "--model", f"second={two_checkpoints['b']}",
        ])
        assert code == 0
        captured = capsys.readouterr()
        responses = captured.out.splitlines()
        expected = {
            name: " ".join(
                (lambda p: p.decode_herbs(p.recommend("0 3", k=3)))(Pipeline.load(path))
            )
            for name, path in two_checkpoints.items()
        }
        assert responses[0] == expected["a"]
        assert responses[1] == expected["b"]
        assert responses[2] == expected["a"]  # first entry answers unrouted lines
        assert responses[3].startswith("error: unknown model 'nope'")
        assert "first" in captured.err and "second" in captured.err

    def test_serve_rejects_malformed_model_specs(self, capsys):
        for argv in (
            ["serve", "--model", "a=x.npz", "--model", "a=y.npz"],  # duplicate
            ["serve", "--model", "a=x.npz", "--model", "SMGCN"],    # mixed forms
            ["serve", "--model", "SMGCN", "--model", "NGCF"],       # two plain names
            ["serve", "--model", "=x.npz"],                          # empty name
            ["serve", "--model", "a="],                              # empty path
        ):
            assert main(argv) == 2
            assert "error: --model" in capsys.readouterr().err

    def test_serve_model_specs_conflict_with_checkpoint(self, capsys):
        code = main(["serve", "--model", "a=x.npz", "--checkpoint", "y.npz"])
        assert code == 2
        assert "--checkpoint conflicts" in capsys.readouterr().err

    def test_serve_missing_catalog_checkpoint_fails_fast(self, capsys, monkeypatch):
        """One clear error line, before any socket binds or pools spawn."""
        self._no_training(monkeypatch)

        def no_bind(*args, **kwargs):
            raise AssertionError("no socket may bind when validation fails")

        monkeypatch.setattr("repro.serving.SocketServer.start", no_bind)
        code = main(["serve", "--port", "0", "--model", "a=/nonexistent/a.npz"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error: checkpoint /nonexistent/a.npz: no such file" in err

    def test_predict_wrong_suffix_checkpoint_fails_fast(self, tmp_path, capsys):
        bogus = tmp_path / "weights.txt"
        bogus.write_text("not a checkpoint")
        code = main(["predict", "--checkpoint", str(bogus), "--symptoms", "0 3"])
        assert code == 2
        err = capsys.readouterr().err
        assert f"error: checkpoint {bogus}: not a .npz checkpoint bundle" in err

    def test_serve_canary_flag_validation(self, capsys):
        assert main(["serve", "--canary", "no-equals-sign"]) == 2
        assert "--canary expects NAME=checkpoint.npz" in capsys.readouterr().err
        assert main(["serve", "--canary", "a=x.npz", "--canary-fraction", "0"]) == 2
        assert "--canary-fraction" in capsys.readouterr().err

    def test_serve_watch_needs_checkpoint_entries(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("\n"))
        code = main(["serve", "--watch", "--scale", "smoke", "--epochs", "1"])
        assert code == 2
        assert "--watch needs checkpoint-backed entries" in capsys.readouterr().err

    def test_serve_watch_interval_validated(self, capsys):
        assert main(["serve", "--watch", "--watch-interval", "0"]) == 2
        assert "--watch-interval" in capsys.readouterr().err

    def test_serve_canary_reports_on_shutdown(self, two_checkpoints, capsys, monkeypatch):
        import io

        self._no_training(monkeypatch)
        monkeypatch.setattr("sys.stdin", io.StringIO("0 3\n0 3\n\n"))
        code = main([
            "serve", "--k", "3",
            "--model", f"main={two_checkpoints['a']}",
            "--canary", f"main={two_checkpoints['b']}",
            "--canary-fraction", "1.0",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert len(captured.out.splitlines()) == 2
        assert "model main" in captured.err  # per-model stats breakdown

    def test_help_epilog_documents_catalog_serving(self):
        parser = build_parser()
        assert "--model smgcn=a.npz" in parser.epilog
        assert "models --json" in parser.epilog
