"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.experiments import EXPERIMENTS


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table99"])

    def test_defaults(self):
        args = build_parser().parse_args(["run", "table2"])
        assert args.scale == "smoke"
        assert args.output is None


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in out

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "table2", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Train" in out

    def test_run_writes_output_file(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        assert main(["run", "fig5", "--scale", "smoke", "--output", str(target)]) == 0
        assert target.exists()
        assert "Fig. 5" in target.read_text()
        assert str(target) in capsys.readouterr().out

    def test_run_training_experiment_smoke(self, capsys):
        assert main(["run", "fig10", "--scale", "smoke"]) == 0
        assert "case study" in capsys.readouterr().out


class TestParseSymptoms:
    @pytest.fixture()
    def vocab(self):
        from repro.cli import _parse_symptoms  # noqa: F401 - import check
        from repro.experiments.datasets import experiment_split

        train, _ = experiment_split("smoke")
        return train.symptom_vocab

    def test_integer_ids(self, vocab):
        from repro.cli import _parse_symptoms

        assert _parse_symptoms("0 3 7", vocab) == [0, 3, 7]

    def test_tokens(self, vocab):
        from repro.cli import _parse_symptoms

        tokens = [vocab.token_of(2), vocab.token_of(5)]
        assert _parse_symptoms(" ".join(tokens), vocab) == [2, 5]

    def test_mixed_tokens_and_ids(self, vocab):
        from repro.cli import _parse_symptoms

        assert _parse_symptoms(f"{vocab.token_of(4)} 1", vocab) == [4, 1]

    def test_unknown_token_rejected(self, vocab):
        from repro.cli import _parse_symptoms

        with pytest.raises(ValueError, match="unknown symptom token"):
            _parse_symptoms("definitely_not_a_symptom", vocab)

    def test_out_of_range_id_rejected(self, vocab):
        from repro.cli import _parse_symptoms

        with pytest.raises(ValueError, match="out of range"):
            _parse_symptoms("99999", vocab)
        with pytest.raises(ValueError, match="out of range"):
            _parse_symptoms("-1", vocab)

    def test_empty_rejected(self, vocab):
        from repro.cli import _parse_symptoms

        with pytest.raises(ValueError, match="no symptoms"):
            _parse_symptoms("   ", vocab)


class TestPredictServe:
    def test_predict_requires_symptoms(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["predict"])

    def test_predict_smoke(self, capsys):
        code = main(
            ["predict", "--scale", "smoke", "--symptoms", "0 3", "--k", "2", "--epochs", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "symptoms: symptom_000 symptom_003" in out
        assert out.count("score=") == 2

    def test_predict_bad_symptom_exits_before_training(self, capsys):
        code = main(["predict", "--scale", "smoke", "--symptoms", "no_such_token"])
        assert code == 2
        assert "unknown symptom token" in capsys.readouterr().err

    def test_predict_invalid_k(self, capsys):
        code = main(["predict", "--scale", "smoke", "--symptoms", "0", "--k", "0"])
        assert code == 2
        assert "--k must be a positive integer" in capsys.readouterr().err

    def test_serve_round_trip(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("0 3\nbad_token\n5\n\n"))
        code = main(["serve", "--scale", "smoke", "--k", "3", "--epochs", "1"])
        assert code == 0
        captured = capsys.readouterr()
        herb_lines = [line for line in captured.out.splitlines() if line.startswith("herb_")]
        assert len(herb_lines) == 2  # the bad line is skipped, the blank line quits
        assert all(len(line.split()) == 3 for line in herb_lines)
        assert "ready:" in captured.err
        assert "unknown symptom token" in captured.err
