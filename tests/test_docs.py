"""Tier-1 documentation guards.

The fast half of ``scripts/check_docs.py`` runs here (cross-links between
README and docs/ must resolve, including ``#anchor`` targets); the expensive
half — actually executing the docs' code fences — runs in the CI docs job.
"""

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
CHECKER = ROOT / "scripts" / "check_docs.py"


def _run(*flags):
    return subprocess.run(
        [sys.executable, str(CHECKER), *flags], capture_output=True, text=True, timeout=120
    )


def test_doc_cross_links_resolve():
    result = _run("--links-only")
    assert result.returncode == 0, result.stdout + result.stderr


def test_docs_exist_and_are_cross_linked():
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/ARCHITECTURE.md" in readme
    assert "docs/SERVING.md" in readme
    architecture = (ROOT / "docs" / "ARCHITECTURE.md").read_text(encoding="utf-8")
    assert "SERVING.md" in architecture


def test_docs_carry_runnable_python_quickstarts():
    result = _run("--list")
    assert result.returncode == 0, result.stdout + result.stderr
    runnable = [
        line
        for line in result.stdout.splitlines()
        if line.startswith("docs/") and line.endswith(": python")
    ]
    assert len(runnable) >= 2, f"expected runnable docs snippets, saw:\n{result.stdout}"
