"""Property-style tests for the JSONL record codec.

No hypothesis in the environment, so the properties run over seeded random
sweeps: hundreds of generated records (arbitrary unicode tokens, huge ids,
adversarial ks) plus mutation/garbage inputs, asserting the codec's two
contracts — decode(encode(record)) is the identity on valid records, and
*every* invalid input raises :class:`~repro.batch.records.RecordError` (the
runner's error-line trigger), never any other exception.
"""

import json
import math
import random
import string

import pytest

from repro.batch.records import (
    BatchRecord,
    RecordError,
    decode_record,
    encode_error,
    encode_result,
)

# Token alphabet stressing the full unicode range: ASCII, JSON-special
# characters, combining marks, CJK, astral-plane emoji, bidi controls.
TRICKY_CHARS = (
    string.ascii_letters
    + string.digits
    + "_-."
    + '"\\/\b\f\n\r\t'
    + " éß́中医草薯☃\U0001f33f\U0001f9ea‏ "
)


def random_token(rng):
    return "".join(rng.choice(TRICKY_CHARS) for _ in range(rng.randint(1, 12)))


def random_record(rng):
    record = {
        "id": (
            rng.choice([rng.randint(-(10**20), 10**20), random_token(rng)])
        ),
        "symptoms": [
            rng.choice([rng.randint(-5, 10**9), random_token(rng)])
            for _ in range(rng.randint(1, 6))
        ],
    }
    if rng.random() < 0.7:
        record["k"] = rng.choice([1, 2, 17, 10**9, 10**18])
    if rng.random() < 0.5:
        record["model"] = random_token(rng)
    return record


class TestRoundTrip:
    def test_decode_is_inverse_of_json_encode(self):
        rng = random.Random(1234)
        for _ in range(300):
            payload = random_record(rng)
            line = json.dumps(payload)
            record = decode_record(line, default_k=7)
            assert isinstance(record, BatchRecord)
            assert record.id == payload["id"]
            assert record.symptoms == payload["symptoms"]
            assert record.k == payload.get("k", 7)
            assert record.model == payload.get("model")

    def test_symptoms_as_string(self):
        record = decode_record('{"id": 1, "symptoms": "a b  c"}')
        assert record.symptoms == "a b  c"

    def test_duplicate_ids_are_not_the_codec_business(self):
        # the codec validates records independently; duplicate ids across
        # lines are legal and pass through untouched
        a = decode_record('{"id": "dup", "symptoms": [1]}')
        b = decode_record('{"id": "dup", "symptoms": [2]}')
        assert a.id == b.id == "dup"

    def test_result_line_round_trips_and_is_deterministic(self):
        rng = random.Random(99)
        for _ in range(100):
            record_id = rng.choice([rng.randint(0, 10**12), random_token(rng)])
            herbs = [random_token(rng) for _ in range(rng.randint(0, 5))]
            herb_ids = [rng.randint(0, 10**6) for _ in herbs]
            scores = [rng.uniform(-1e6, 1e6) for _ in herbs]
            line = encode_result(record_id, "m", herbs, herb_ids, scores)
            again = encode_result(record_id, "m", herbs, herb_ids, scores)
            assert line == again  # byte-deterministic
            assert "\n" not in line  # one record stays one line
            parsed = json.loads(line)
            assert parsed["id"] == record_id
            assert parsed["herbs"] == herbs
            assert parsed["herb_ids"] == herb_ids
            assert parsed["scores"] == scores  # repr round-trip is exact


class TestRejections:
    @pytest.mark.parametrize(
        "line",
        [
            "",
            "   ",
            "not json",
            "[1, 2]",
            "42",
            '"string"',
            "null",
            "true",
            '{"id": 1, "symptoms": [1]',  # truncated
            '{"id": 1}',  # no symptoms
            '{"symptoms": [1]}',  # no id
            '{"id": null, "symptoms": [1]}',
            '{"id": true, "symptoms": [1]}',
            '{"id": 1.5, "symptoms": [1]}',
            '{"id": [1], "symptoms": [1]}',
            '{"id": 1, "symptoms": []}',
            '{"id": 1, "symptoms": ""}',
            '{"id": 1, "symptoms": "   "}',
            '{"id": 1, "symptoms": [[1]]}',
            '{"id": 1, "symptoms": [1.5]}',
            '{"id": 1, "symptoms": [true]}',
            '{"id": 1, "symptoms": [null]}',
            '{"id": 1, "symptoms": {"a": 1}}',
            '{"id": 1, "symptoms": [1], "k": 0}',
            '{"id": 1, "symptoms": [1], "k": -3}',
            '{"id": 1, "symptoms": [1], "k": 2.0}',
            '{"id": 1, "symptoms": [1], "k": true}',
            '{"id": 1, "symptoms": [1], "k": "5"}',
            '{"id": 1, "symptoms": [1], "k": NaN}',
            '{"id": 1, "symptoms": [1], "k": Infinity}',
            '{"id": 1, "symptoms": [1], "model": ""}',
            '{"id": 1, "symptoms": [1], "model": 3}',
            '{"id": 1, "symptoms": [1], "extra": true}',
        ],
    )
    def test_malformed_records_raise_record_error_only(self, line):
        with pytest.raises(RecordError):
            decode_record(line)

    def test_garbage_sweep_raises_record_error_only(self):
        rng = random.Random(4321)
        alphabet = TRICKY_CHARS + "{}[]:,"
        for _ in range(500):
            garbage = "".join(rng.choice(alphabet) for _ in range(rng.randint(1, 60)))
            try:
                record = decode_record(garbage)
            except RecordError:
                continue  # the only exception the codec may raise
            assert isinstance(record, BatchRecord)  # rare accidental valid JSON

    def test_mutated_valid_records_never_raise_anything_else(self):
        rng = random.Random(777)
        for _ in range(300):
            line = list(json.dumps(random_record(rng)))
            for _ in range(rng.randint(1, 4)):  # random single-char mutations
                position = rng.randrange(len(line))
                line[position] = rng.choice(TRICKY_CHARS + "{}[]:,")
            try:
                decode_record("".join(line))
            except RecordError:
                pass

    def test_error_carries_recovered_id(self):
        with pytest.raises(RecordError) as exc_info:
            decode_record('{"id": "rx-1", "symptoms": [], "k": 3}')
        assert exc_info.value.record_id == "rx-1"

    def test_error_without_recoverable_id(self):
        with pytest.raises(RecordError) as exc_info:
            decode_record('{"symptoms": [1]}')
        assert exc_info.value.record_id is None


class TestNaNFreeGuarantee:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_scores_refuse_to_encode(self, bad):
        with pytest.raises(RecordError) as exc_info:
            encode_result("rx", "m", ["h"], [0], [bad])
        assert exc_info.value.record_id == "rx"

    def test_non_finite_anywhere_in_the_list(self):
        scores = [1.0, 2.0, float("nan"), 3.0]
        with pytest.raises(RecordError):
            encode_result(1, "m", list("abcd"), range(4), scores)

    def test_emitted_lines_are_strict_json(self):
        rng = random.Random(5)
        for _ in range(50):
            scores = [rng.uniform(-10, 10) for _ in range(3)]
            line = encode_result(rng.randint(0, 99), "m", list("abc"), range(3), scores)
            parsed = json.loads(line)  # strict parser must accept every line
            assert all(math.isfinite(value) for value in parsed["scores"])


class TestErrorLines:
    def test_error_line_shape(self):
        assert json.loads(encode_error("rx-9", "boom")) == {"id": "rx-9", "error": "boom"}
        assert json.loads(encode_error(4, "boom"))["id"] == 4

    @pytest.mark.parametrize("bad_id", [None, True, 1.5, [1], {"a": 1}, object()])
    def test_unusable_ids_become_null(self, bad_id):
        assert json.loads(encode_error(bad_id, "boom"))["id"] is None

    def test_error_lines_are_single_lines(self):
        line = encode_error("a\nb", "reason\nwith newline")
        assert "\n" not in line
        assert json.loads(line)["error"] == "reason\nwith newline"
