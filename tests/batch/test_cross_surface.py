"""One model, three surfaces, one answer.

``repro batch``, the serve JSON protocol, and ``Pipeline.recommend`` must
agree bit-for-bit on the same checkpoint — across retrieval modes (exact and
approx re-rank) and engine backends (serial and process-sharded). This is the
contract that makes offline scoring a valid substitute for the online path.
"""

import json

import pytest

from repro.api import Pipeline
from repro.batch.runner import run_batch_file
from repro.io.catalog import ModelCatalog
from repro.serving.handler import RecommendationHandler

from tests.batch.conftest import make_corpus

SURFACES = [
    pytest.param(("exact", None), id="exact-serial"),
    pytest.param(("approx", None), id="approx-serial"),
    pytest.param(("exact", "processes"), id="exact-processes"),
    pytest.param(("approx", "processes"), id="approx-processes"),
]


@pytest.fixture(params=SURFACES)
def surface_pipeline(request, batch_checkpoint):
    retrieval, backend = request.param
    kwargs = {"retrieval": retrieval}
    if retrieval == "approx":
        kwargs["candidate_factor"] = 2
    if backend == "processes":
        kwargs.update(num_shards=2, backend="processes", num_workers=2)
    pipeline = Pipeline.load(batch_checkpoint, **kwargs)
    yield pipeline
    pipeline.close()


def corpus_records(count=24):
    return [
        {"id": f"rx-{i}", "symptoms": [i % 30, (i * 7 + 3) % 30], "k": 1 + (i % 5)}
        for i in range(count)
    ]


def test_batch_serve_and_api_agree(surface_pipeline, tmp_path):
    records = corpus_records()
    source = tmp_path / "corpus.jsonl"
    source.write_text("".join(json.dumps(r) + "\n" for r in records))
    target = tmp_path / "out.jsonl"

    catalog = ModelCatalog.for_pipeline(surface_pipeline)
    run_batch_file(catalog, source, target, window=7)
    batch_rows = [json.loads(line) for line in target.read_text().splitlines()]
    assert [row["id"] for row in batch_rows] == [r["id"] for r in records]

    handler = RecommendationHandler(catalog, k=10)
    serve_lines = handler(
        [json.dumps({"symptoms": r["symptoms"], "k": r["k"]}) for r in records]
    )

    for record, batch_row, serve_line in zip(records, batch_rows, serve_lines):
        # surface 1 ↔ 3: batch vs the library API, exact equality
        direct = surface_pipeline.recommend(record["symptoms"], k=record["k"])
        assert batch_row["herb_ids"] == list(direct.herb_ids)
        assert batch_row["scores"] == [float(s) for s in direct.scores]

        # surface 1 ↔ 2: batch vs serve JSON protocol (serve rounds to 6)
        served = json.loads(serve_line)
        assert "error" not in served
        assert served["herbs"] == batch_row["herbs"]
        assert served["scores"] == [round(s, 6) for s in batch_row["scores"]]


def test_batch_bytes_identical_across_backends(batch_checkpoint, tmp_path):
    """Process-sharded scoring must not perturb a single output byte."""
    records = corpus_records()
    source = tmp_path / "corpus.jsonl"
    source.write_text("".join(json.dumps(r) + "\n" for r in records))

    outputs = {}
    for label, kwargs in (
        ("serial", {}),
        ("processes", {"num_shards": 2, "backend": "processes", "num_workers": 2}),
    ):
        pipeline = Pipeline.load(batch_checkpoint, **kwargs)
        try:
            catalog = ModelCatalog.for_pipeline(pipeline)
            target = tmp_path / f"{label}.jsonl"
            run_batch_file(catalog, source, target, window=5)
            outputs[label] = target.read_bytes()
        finally:
            pipeline.close()
    assert outputs["serial"] == outputs["processes"]


def test_recommend_stream_matches_batch_lines(batch_checkpoint, tmp_path):
    records = corpus_records(10)
    pipeline = Pipeline.load(batch_checkpoint)
    try:
        streamed = list(pipeline.recommend_stream(records, k=10, window=4))
        source = tmp_path / "corpus.jsonl"
        source.write_text("".join(json.dumps(r) + "\n" for r in records))
        target = tmp_path / "out.jsonl"
        catalog = ModelCatalog.for_pipeline(pipeline)
        run_batch_file(catalog, source, target, window=4)
        file_rows = [json.loads(line) for line in target.read_text().splitlines()]
        assert streamed == file_rows
    finally:
        pipeline.close()
