"""``repro batch`` CLI: argument validation matrix and end-to-end runs."""

import io
import json

import pytest

from repro.cli import main

from tests.batch.conftest import make_corpus


@pytest.fixture()
def corpus(tmp_path):
    path = tmp_path / "corpus.jsonl"
    ids = make_corpus(path, 30)
    return path, ids


class TestValidation:
    """Every bad invocation exits 2 with an error on stderr — before any
    model loading or file writing happens."""

    def run(self, argv, capsys):
        code = main(argv)
        captured = capsys.readouterr()
        return code, captured.err

    @pytest.mark.parametrize(
        "argv, fragment",
        [
            (["batch", "--window", "0"], "--window"),
            (["batch", "--window", "-5"], "--window"),
            (["batch", "--jobs", "0"], "--jobs"),
            (["batch", "--k", "0"], "k"),
            (["batch", "-", "extra.jsonl"], "stdin"),
            (["batch", "-", "--output-dir", "out"], "stdin"),
            (["batch", "-", "--jobs", "2"], "stdin"),
            (["batch", "--resume"], "--resume"),
            (["batch", "--resume", "--output", "-"], "--resume"),
            (["batch", "missing-input.jsonl"], "not a readable file"),
        ],
    )
    def test_bad_invocations(self, argv, fragment, capsys):
        code, err = self.run(argv, capsys)
        assert code == 2
        assert fragment in err

    def test_output_conflicts_with_output_dir(self, corpus, capsys, tmp_path):
        source, _ = corpus
        code, err = self.run(
            ["batch", str(source), "--output", "a", "--output-dir", str(tmp_path)],
            capsys,
        )
        assert code == 2 and "--output-dir" in err

    def test_multiple_inputs_need_output_dir(self, corpus, tmp_path, capsys):
        source, _ = corpus
        second = tmp_path / "more.jsonl"
        make_corpus(second, 3)
        code, err = self.run(["batch", str(source), str(second)], capsys)
        assert code == 2 and "--output-dir" in err

    def test_resume_to_stdout_rejected(self, corpus, capsys):
        source, _ = corpus
        code, err = self.run(["batch", str(source), "--resume"], capsys)
        assert code == 2 and "--resume" in err

    def test_duplicate_basenames_rejected(self, corpus, tmp_path, capsys):
        source, _ = corpus
        clone_dir = tmp_path / "clone"
        clone_dir.mkdir()
        clone = clone_dir / source.name
        make_corpus(clone, 3)
        code, err = self.run(
            ["batch", str(source), str(clone), "--output-dir", str(tmp_path / "out")],
            capsys,
        )
        assert code == 2 and "basename" in err

    def test_output_must_not_overwrite_input(self, corpus, capsys):
        source, _ = corpus
        code, err = self.run(
            ["batch", str(source), "--output", str(source)], capsys
        )
        assert code == 2 and "overwrite" in err


class TestEndToEnd:
    def test_single_file_run(self, batch_checkpoint, corpus, tmp_path, capsys):
        source, ids = corpus
        target = tmp_path / "scored.jsonl"
        code = main(
            [
                "batch",
                str(source),
                "--checkpoint",
                str(batch_checkpoint),
                "--output",
                str(target),
                "--window",
                "8",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        rows = [json.loads(line) for line in target.read_text().splitlines()]
        assert [row["id"] for row in rows] == ids
        assert all("herbs" in row for row in rows)
        assert "rec/s" in captured.err  # throughput report

    def test_stdin_to_stdout(self, batch_checkpoint, corpus, capsys, monkeypatch):
        source, ids = corpus

        class FakeStdin:
            buffer = io.BytesIO(source.read_bytes())

        monkeypatch.setattr("sys.stdin", FakeStdin())
        code = main(["batch", "--checkpoint", str(batch_checkpoint), "--window", "8"])
        captured = capsys.readouterr()
        assert code == 0
        rows = [json.loads(line) for line in captured.out.splitlines()]
        assert [row["id"] for row in rows] == ids

    def test_multi_file_output_dir_with_jobs(
        self, batch_checkpoint, tmp_path, capsys
    ):
        sources = []
        for name, count in (("a.jsonl", 12), ("b.jsonl", 7)):
            path = tmp_path / name
            make_corpus(path, count, start=len(sources) * 1000)
            sources.append((path, count))
        out_dir = tmp_path / "scored"
        code = main(
            [
                "batch",
                *[str(path) for path, _ in sources],
                "--checkpoint",
                str(batch_checkpoint),
                "--output-dir",
                str(out_dir),
                "--jobs",
                "2",
                "--window",
                "4",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        for path, count in sources:
            produced = (out_dir / path.name).read_text().splitlines()
            assert len(produced) == count
        assert captured.err.count("->") == 2  # one per-file stats line each

    def test_resume_noop_after_complete_run(
        self, batch_checkpoint, corpus, tmp_path, capsys
    ):
        source, ids = corpus
        target = tmp_path / "scored.jsonl"
        base = [
            "batch",
            str(source),
            "--checkpoint",
            str(batch_checkpoint),
            "--output",
            str(target),
        ]
        assert main(base) == 0
        before = target.read_bytes()
        capsys.readouterr()
        assert main(base + ["--resume"]) == 0
        captured = capsys.readouterr()
        assert target.read_bytes() == before
        assert f"{len(ids)} already durable" in captured.err

    def test_runtime_failure_exits_one(self, batch_checkpoint, tmp_path, capsys):
        """A file that disappears between validation and scoring exits 1."""
        good = tmp_path / "good.jsonl"
        make_corpus(good, 3)
        vanishing = tmp_path / "vanishing.jsonl"
        make_corpus(vanishing, 3)
        out_dir = tmp_path / "out"

        import repro.batch.runner as runner_module

        original = runner_module.run_batch_file

        def sabotage(catalog, input_path, output_path, **kwargs):
            if input_path is not None and "vanishing" in str(input_path):
                raise runner_module.BatchError("boom: file vanished")
            return original(catalog, input_path, output_path, **kwargs)

        import unittest.mock

        with unittest.mock.patch.object(runner_module, "run_batch_file", sabotage):
            code = main(
                [
                    "batch",
                    str(good),
                    str(vanishing),
                    "--checkpoint",
                    str(batch_checkpoint),
                    "--output-dir",
                    str(out_dir),
                ]
            )
        captured = capsys.readouterr()
        assert code == 1
        assert "boom" in captured.err
        assert (out_dir / "good.jsonl").exists()  # the healthy file still scored
