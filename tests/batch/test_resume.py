"""Crash-resume: SIGKILL (real and injected) must never lose or dup a record.

Two layers:

* an in-process harness that wraps the output stream via the runner's
  ``_output_filter`` seam and dies mid-write after a randomized byte budget —
  fast enough to sweep dozens of crash points, including crashes *during*
  resume and torn (partially-written) tail lines past the fsync watermark;
* one real ``SIGKILL`` of a ``repro batch`` subprocess at a random moment,
  followed by ``--resume`` until completion, asserting the concatenated
  output is bit-identical to an uninterrupted run.
"""

import json
import os
import random
import signal
import subprocess
import sys
import time

import pytest

from repro.batch.checkpoint import (
    BatchCheckpoint,
    CheckpointStateError,
    checkpoint_path_for,
)
from repro.batch.runner import BatchError, run_batch_file


class SimulatedCrash(BaseException):
    """Out-of-band like SIGKILL: not an Exception, so no handler cleans up."""


class CrashingFile:
    """Binary file wrapper that dies after ``budget`` bytes, mid-write.

    Writes up to the budget (possibly a torn partial line), then raises
    without flushing — the closest in-process stand-in for a hard kill.
    """

    def __init__(self, raw, budget):
        self._raw = raw
        self._budget = budget

    def write(self, data):
        if len(data) > self._budget:
            self._raw.write(data[: self._budget])
            self._raw.flush()
            raise SimulatedCrash()
        self._budget -= len(data)
        return self._raw.write(data)

    def __getattr__(self, name):
        return getattr(self._raw, name)


def run_to_completion(catalog, source, target, window, budgets):
    """Crash at each budget in turn (resuming), then finish cleanly."""
    crashes = 0
    for budget in budgets:
        try:
            run_batch_file(
                catalog,
                source,
                target,
                window=window,
                resume=crashes > 0,
                _output_filter=lambda raw, b=budget: CrashingFile(raw, b),
            )
            break  # budget exceeded the remaining output: ran to completion
        except SimulatedCrash:
            crashes += 1
    else:
        run_batch_file(catalog, source, target, window=window, resume=crashes > 0)
    return crashes


class TestInjectedCrashes:
    def test_resume_is_bit_identical_across_crash_points(
        self, batch_catalog, corpus_factory, tmp_path
    ):
        source, _ = corpus_factory(120)
        baseline = tmp_path / "baseline.jsonl"
        run_batch_file(batch_catalog, source, baseline, window=16)
        expected = baseline.read_bytes()

        rng = random.Random(2024)
        for trial in range(8):
            target = tmp_path / f"crashed-{trial}.jsonl"
            # several crashes per trial, at randomized byte offsets
            budgets = sorted(rng.randrange(0, len(expected)) for _ in range(3))
            crashes = run_to_completion(
                batch_catalog, source, target, window=16, budgets=budgets
            )
            assert target.read_bytes() == expected, f"trial {trial} diverged"
            state = BatchCheckpoint.load(checkpoint_path_for(target))
            assert state.complete
            assert crashes >= 1  # budgets below corpus size must actually crash

    def test_torn_tail_past_watermark_is_discarded(
        self, batch_catalog, corpus_factory, tmp_path
    ):
        """Bytes written after the last fsynced checkpoint must be re-scored,
        even when the crash left a torn half-line at the end of the file."""
        source, _ = corpus_factory(60)
        baseline = tmp_path / "baseline.jsonl"
        run_batch_file(batch_catalog, source, baseline, window=8)
        expected = baseline.read_bytes()

        target = tmp_path / "torn.jsonl"
        with pytest.raises(SimulatedCrash):
            run_batch_file(
                batch_catalog,
                source,
                target,
                window=8,
                _output_filter=lambda raw: CrashingFile(raw, len(expected) // 2),
            )
        state = BatchCheckpoint.load(checkpoint_path_for(target))
        size_on_disk = target.stat().st_size
        assert size_on_disk > state.output_offset  # a torn tail exists
        tail = target.read_bytes()[state.output_offset :]
        assert not tail.endswith(b"\n") or len(tail) > 0

        run_batch_file(batch_catalog, source, target, window=8, resume=True)
        assert target.read_bytes() == expected

    def test_resume_of_complete_run_rescores_nothing(
        self, batch_catalog, corpus_factory, tmp_path
    ):
        source, ids = corpus_factory(25)
        target = tmp_path / "out.jsonl"
        run_batch_file(batch_catalog, source, target, window=8)
        before = target.read_bytes()
        stats = run_batch_file(batch_catalog, source, target, window=8, resume=True)
        assert stats.records == 0
        assert stats.resumed_records == len(ids)
        assert target.read_bytes() == before

    def test_resume_with_missing_sidecar_starts_fresh(
        self, batch_catalog, corpus_factory, tmp_path
    ):
        source, _ = corpus_factory(10)
        target = tmp_path / "out.jsonl"
        stats = run_batch_file(batch_catalog, source, target, window=4, resume=True)
        assert stats.records == 10

    def test_resume_rejects_swapped_input(self, batch_catalog, corpus_factory, tmp_path):
        source, _ = corpus_factory(40, name="first.jsonl")
        target = tmp_path / "out.jsonl"
        with pytest.raises(SimulatedCrash):
            run_batch_file(
                batch_catalog,
                source,
                target,
                window=4,
                _output_filter=lambda raw: CrashingFile(raw, 2500),
            )
        assert checkpoint_path_for(target).exists()
        other, _ = corpus_factory(40, name="other.jsonl", start=5000)
        with pytest.raises(BatchError, match="input"):
            run_batch_file(batch_catalog, other, target, window=4, resume=True)

    def test_resume_rejects_truncated_output(
        self, batch_catalog, corpus_factory, tmp_path
    ):
        source, _ = corpus_factory(40)
        target = tmp_path / "out.jsonl"
        with pytest.raises(SimulatedCrash):
            run_batch_file(
                batch_catalog,
                source,
                target,
                window=4,
                _output_filter=lambda raw: CrashingFile(raw, 2500),
            )
        state = BatchCheckpoint.load(checkpoint_path_for(target))
        assert state.output_offset > 0
        with open(target, "r+b") as stream:
            stream.truncate(state.output_offset - 1)  # lost a durable byte
        with pytest.raises(BatchError, match="shorter"):
            run_batch_file(batch_catalog, source, target, window=4, resume=True)

    def test_malformed_sidecar_raises_cleanly(self, tmp_path):
        sidecar = tmp_path / "x.checkpoint"
        sidecar.write_text("not json")
        with pytest.raises(CheckpointStateError):
            BatchCheckpoint.load(sidecar)
        sidecar.write_text(json.dumps({"version": 999}))
        with pytest.raises(CheckpointStateError):
            BatchCheckpoint.load(sidecar)


class TestRealSigkill:
    def test_sigkill_and_resume_until_done(
        self, batch_checkpoint, tmp_path
    ):
        from tests.batch.conftest import make_corpus

        source = tmp_path / "corpus.jsonl"
        ids = make_corpus(source, 3000)
        baseline = tmp_path / "baseline.jsonl"
        target = tmp_path / "killed.jsonl"
        base_cmd = [
            sys.executable,
            "-m",
            "repro",
            "batch",
            "--checkpoint",
            str(batch_checkpoint),
            "--window",
            "32",
        ]
        env = dict(os.environ, PYTHONPATH="src")

        subprocess.run(
            base_cmd + [str(source), "--output", str(baseline)],
            check=True,
            env=env,
            cwd="/root/repo",
        )
        expected = baseline.read_bytes()
        assert expected.count(b"\n") == len(ids)

        # start, wait until output visibly grows, SIGKILL mid-flight
        victim = subprocess.Popen(
            base_cmd + [str(source), "--output", str(target)],
            env=env,
            cwd="/root/repo",
        )
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if target.exists() and 0 < target.stat().st_size < len(expected):
                break
            if victim.poll() is not None:
                pytest.skip("scoring finished before the kill landed")
            time.sleep(0.01)
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)
        assert victim.returncode == -signal.SIGKILL
        assert target.read_bytes() != expected  # genuinely interrupted

        # resume until a run exits 0 (allow a couple of attempts for safety)
        for _ in range(3):
            result = subprocess.run(
                base_cmd + [str(source), "--output", str(target), "--resume"],
                env=env,
                cwd="/root/repo",
            )
            if result.returncode == 0:
                break
        assert result.returncode == 0
        final = target.read_bytes()
        assert final == expected  # bit-identical to the uninterrupted run
        got_ids = [json.loads(line)["id"] for line in final.decode().splitlines()]
        assert got_ids == ids  # no lost, duplicated, or reordered records
