"""Streaming-runner behaviour: order, isolation, edge files, bounded window."""

import itertools
import json

import pytest

from repro.batch.checkpoint import BatchCheckpoint, checkpoint_path_for
from repro.batch.runner import (
    BatchError,
    BatchStats,
    run_batch_file,
    run_batch_files,
    score_lines,
    stream_results,
)
from repro.inference.engine import Recommendation


def read_lines(path):
    return path.read_text(encoding="utf-8").splitlines()


class TestScoreLines:
    def test_one_output_line_per_input_in_order(self, batch_catalog, batch_pipeline):
        lines = [
            json.dumps({"id": "a", "symptoms": [0, 3], "k": 2}),
            "garbage",
            json.dumps({"id": "b", "symptoms": ["nope"], "k": 2}),
            json.dumps({"id": "c", "symptoms": [1], "k": 2, "model": "nosuch"}),
            json.dumps({"id": "d", "symptoms": [5], "k": 3}),
        ]
        out = [json.loads(line) for line in score_lines(batch_catalog, lines, default_k=2)]
        assert [o["id"] for o in out] == ["a", None, "b", "c", "d"]
        assert "herbs" in out[0] and "herbs" in out[4]
        assert "error" in out[1] and "error" in out[2] and "error" in out[3]
        assert "unknown model" in out[3]["error"]
        # scored lines are bit-identical to direct Pipeline calls
        expected = batch_pipeline.recommend([0, 3], k=2)
        assert out[0]["herb_ids"] == list(expected.herb_ids)
        assert out[0]["scores"] == [float(s) for s in expected.scores]

    def test_stats_counting(self, batch_catalog):
        stats = BatchStats()
        score_lines(
            batch_catalog,
            [json.dumps({"id": 1, "symptoms": [0]}), "junk"],
            default_k=2,
            stats=stats,
        )
        assert (stats.records, stats.ok, stats.errors) == (2, 1, 1)

    def test_default_k_applies(self, batch_catalog, batch_pipeline):
        line = json.dumps({"id": 1, "symptoms": [2]})
        out = json.loads(score_lines(batch_catalog, [line], default_k=4)[0])
        assert len(out["herb_ids"]) == 4

    def test_huge_k_clamps_to_vocabulary(self, batch_catalog, batch_pipeline):
        line = json.dumps({"id": 1, "symptoms": [2], "k": 10**9})
        out = json.loads(score_lines(batch_catalog, [line], default_k=2)[0])
        assert len(out["herb_ids"]) == len(batch_pipeline.herb_vocab)

    def test_explicit_model_routes_to_entry(self, batch_catalog):
        line = json.dumps({"id": 1, "symptoms": [0], "k": 2, "model": "SMGCN"})
        out = json.loads(score_lines(batch_catalog, [line], default_k=2)[0])
        assert out["model"] == "SMGCN"

    def test_duplicate_ids_pass_through(self, batch_catalog):
        lines = [json.dumps({"id": "dup", "symptoms": [i], "k": 1}) for i in range(3)]
        out = [json.loads(line) for line in score_lines(batch_catalog, lines, default_k=1)]
        assert [o["id"] for o in out] == ["dup"] * 3

    def test_non_finite_scores_become_error_lines(self):
        """A model emitting NaN yields an error line, never invalid JSON."""

        class NaNPipeline:
            class _Vocab:
                def __contains__(self, token):
                    return True

                def id_of(self, token):
                    return 0

                def token_of(self, index):
                    return str(index)

                def __len__(self):
                    return 10

            symptom_vocab = _Vocab()
            herb_vocab = _Vocab()

            def recommend_many(self, sets, k):
                return [
                    Recommendation(herb_ids=(0,), scores=(float("nan"),))
                    for _ in sets
                ]

        class FakeEntry:
            name = "nan-model"

            def lease(self):
                import contextlib

                @contextlib.contextmanager
                def ctx():
                    yield NaNPipeline()

                return ctx()

        class FakeCatalog:
            def entry(self, name=None):
                return FakeEntry()

        out = score_lines(FakeCatalog(), [json.dumps({"id": "x", "symptoms": [1]})])
        parsed = json.loads(out[0])
        assert parsed["id"] == "x"
        assert "non-finite" in parsed["error"]


class TestStreamResults:
    def test_accepts_dicts_bytes_and_strings(self, batch_catalog):
        records = [
            {"id": 1, "symptoms": [0], "k": 1},
            json.dumps({"id": 2, "symptoms": [1], "k": 1}),
            json.dumps({"id": 3, "symptoms": [2], "k": 1}).encode("utf-8"),
        ]
        out = [json.loads(line) for line in stream_results(batch_catalog, records)]
        assert [o["id"] for o in out] == [1, 2, 3]

    def test_blank_lines_are_skipped(self, batch_catalog):
        records = ["", "   ", json.dumps({"id": 1, "symptoms": [0], "k": 1}), "\n"]
        stats = BatchStats()
        out = list(stream_results(batch_catalog, records, stats=stats))
        assert len(out) == 1
        assert stats.blank_lines == 3

    def test_lazy_bounded_consumption(self, batch_catalog):
        """The generator never reads far beyond one window ahead."""
        consumed = [0]

        def infinite():
            i = 0
            while True:
                consumed[0] += 1
                yield {"id": i, "symptoms": [i % 30], "k": 1}
                i += 1

        window = 8
        results = stream_results(batch_catalog, infinite(), window=window)
        taken = list(itertools.islice(results, 20))
        assert len(taken) == 20
        assert consumed[0] <= 4 * window  # bounded read-ahead, not the corpus

    def test_rejects_bad_window(self, batch_catalog):
        with pytest.raises(ValueError):
            list(stream_results(batch_catalog, [], window=0))

    def test_pipeline_recommend_stream_matches_recommend(self, batch_pipeline):
        records = [{"id": i, "symptoms": [i % 30, (i + 5) % 30], "k": 3} for i in range(12)]
        streamed = list(batch_pipeline.recommend_stream(iter(records), k=3, window=5))
        assert [r["id"] for r in streamed] == list(range(12))
        for record, result in zip(records, streamed):
            expected = batch_pipeline.recommend(record["symptoms"], k=3)
            assert result["herb_ids"] == list(expected.herb_ids)
            assert result["scores"] == [float(s) for s in expected.scores]

    def test_pipeline_recommend_stream_rejects_bad_k(self, batch_pipeline):
        with pytest.raises(ValueError):
            next(batch_pipeline.recommend_stream([], k=0))


class TestRunBatchFile:
    def test_empty_input_file_completes_cleanly(self, batch_catalog, tmp_path):
        """Classic streaming edge: an empty corpus is a valid, complete run."""
        source = tmp_path / "empty.jsonl"
        source.write_text("")
        target = tmp_path / "out.jsonl"
        stats = run_batch_file(batch_catalog, source, target, window=8)
        assert stats.records == 0
        assert target.read_bytes() == b""
        state = BatchCheckpoint.load(checkpoint_path_for(target))
        assert state.complete
        # and resume on the empty-complete run stays a no-op
        again = run_batch_file(batch_catalog, source, target, window=8, resume=True)
        assert again.records == 0 and target.read_bytes() == b""

    def test_final_line_without_trailing_newline(self, batch_catalog, tmp_path):
        """The other classic: a truncated final newline must not drop a record."""
        source = tmp_path / "in.jsonl"
        body = json.dumps({"id": "a", "symptoms": [0], "k": 1}) + "\n"
        body += json.dumps({"id": "b", "symptoms": [1], "k": 1})  # no newline
        source.write_text(body)
        target = tmp_path / "out.jsonl"
        stats = run_batch_file(batch_catalog, source, target, window=8)
        assert stats.records == 2
        out = [json.loads(line) for line in read_lines(target)]
        assert [o["id"] for o in out] == ["a", "b"]
        assert target.read_text().endswith("\n")  # output is well-formed JSONL
        assert BatchCheckpoint.load(checkpoint_path_for(target)).complete

    def test_blank_only_file(self, batch_catalog, tmp_path):
        source = tmp_path / "blank.jsonl"
        source.write_text("\n\n   \n")
        target = tmp_path / "out.jsonl"
        stats = run_batch_file(batch_catalog, source, target, window=8)
        assert stats.records == 0 and stats.blank_lines == 3
        assert target.read_bytes() == b""
        assert BatchCheckpoint.load(checkpoint_path_for(target)).complete

    def test_output_is_window_invariant(self, batch_catalog, corpus_factory, tmp_path):
        source, _ = corpus_factory(40)
        outputs = []
        for window in (1, 7, 64):
            target = tmp_path / f"out-{window}.jsonl"
            run_batch_file(batch_catalog, source, target, window=window)
            outputs.append(target.read_bytes())
        assert outputs[0] == outputs[1] == outputs[2]

    def test_interleaved_errors_keep_positions(self, batch_catalog, tmp_path):
        source = tmp_path / "mixed.jsonl"
        lines = []
        for i in range(30):
            if i % 5 == 2:
                lines.append("junk %d" % i)
            else:
                lines.append(json.dumps({"id": i, "symptoms": [i % 30], "k": 1}))
        source.write_text("\n".join(lines) + "\n")
        target = tmp_path / "out.jsonl"
        stats = run_batch_file(batch_catalog, source, target, window=4)
        assert stats.records == 30
        assert stats.errors == 6
        out = [json.loads(line) for line in read_lines(target)]
        assert len(out) == 30
        for i, record in enumerate(out):
            if i % 5 == 2:
                assert "error" in record
            else:
                assert record["id"] == i and "herbs" in record

    def test_fresh_run_removes_stale_sidecar(self, batch_catalog, corpus_factory, tmp_path):
        source, _ = corpus_factory(5)
        target = tmp_path / "out.jsonl"
        run_batch_file(batch_catalog, source, target, window=2)
        sidecar = checkpoint_path_for(target)
        first = BatchCheckpoint.load(sidecar)
        run_batch_file(batch_catalog, source, target, window=3)  # no resume: fresh
        assert BatchCheckpoint.load(sidecar).complete
        assert BatchCheckpoint.load(sidecar).records_done == first.records_done

    def test_missing_input_raises_batch_error(self, batch_catalog, tmp_path):
        with pytest.raises(BatchError):
            run_batch_file(batch_catalog, tmp_path / "nope.jsonl", tmp_path / "out.jsonl")

    def test_rejects_bad_window(self, batch_catalog, tmp_path):
        with pytest.raises(ValueError):
            run_batch_file(batch_catalog, None, None, window=0)

    def test_resume_requires_files(self, batch_catalog, tmp_path):
        with pytest.raises(BatchError):
            run_batch_file(batch_catalog, None, tmp_path / "out.jsonl", resume=True)


class TestRunBatchFiles:
    @pytest.mark.parametrize("jobs", [1, 3])
    def test_multi_file_fanout_matches_single_runs(
        self, batch_catalog, tmp_path, jobs
    ):
        from tests.batch.conftest import make_corpus

        tasks = []
        for name, count in (("a", 17), ("b", 5), ("c", 23)):
            source = tmp_path / f"{name}.jsonl"
            make_corpus(source, count, start=ord(name) * 100)
            tasks.append((source, tmp_path / f"{name}.out.jsonl"))
        results = run_batch_files(batch_catalog, tasks, jobs=jobs, window=8)
        assert [r.failed for r in results] == [False, False, False]
        assert [r.stats.records for r in results] == [17, 5, 23]
        for source, target in tasks:
            solo = tmp_path / (source.name + ".solo")
            run_batch_file(batch_catalog, source, solo, window=8)
            assert target.read_bytes() == solo.read_bytes()

    def test_one_failing_file_does_not_poison_the_rest(self, batch_catalog, tmp_path):
        from tests.batch.conftest import make_corpus

        good = tmp_path / "good.jsonl"
        make_corpus(good, 4)
        tasks = [
            (tmp_path / "missing.jsonl", tmp_path / "missing.out"),
            (good, tmp_path / "good.out"),
        ]
        results = run_batch_files(batch_catalog, tasks, jobs=2, window=4)
        assert results[0].failed and not results[1].failed
        assert results[1].stats.records == 4

    def test_rejects_bad_jobs(self, batch_catalog):
        with pytest.raises(ValueError):
            run_batch_files(batch_catalog, [], jobs=0)
