"""Shared fixtures for the batch-pipeline tests.

One smoke-scale pipeline is trained per session and reused everywhere —
batch bit-identity is always asserted against the *same* weights, and the
checkpoint bundle backs the subprocess (SIGKILL) and CLI end-to-end tests.
"""

import json

import pytest

from repro.api import Pipeline
from repro.experiments.datasets import get_profile
from repro.io.catalog import ModelCatalog


@pytest.fixture(scope="session")
def batch_pipeline():
    return Pipeline(
        "SMGCN", scale="smoke", trainer_config=get_profile("smoke").trainer_config(epochs=1)
    ).fit()


@pytest.fixture(scope="session")
def batch_catalog(batch_pipeline):
    return ModelCatalog.for_pipeline(batch_pipeline)


@pytest.fixture(scope="session")
def batch_checkpoint(batch_pipeline, tmp_path_factory):
    """The session pipeline saved to disk, for subprocess / CLI runs."""
    path = tmp_path_factory.mktemp("batch-ckpt") / "smgcn.npz"
    batch_pipeline.save(path)
    return path


def make_corpus(path, count, num_symptoms=30, k=5, start=0):
    """Write a deterministic JSONL corpus; returns the record ids."""
    ids = []
    with open(path, "w", encoding="utf-8") as stream:
        for i in range(start, start + count):
            record = {
                "id": f"rx-{i:06d}",
                "symptoms": [i % num_symptoms, (i * 7 + 3) % num_symptoms],
                "k": 1 + (i % k),
            }
            ids.append(record["id"])
            stream.write(json.dumps(record) + "\n")
    return ids


@pytest.fixture()
def corpus_factory(tmp_path):
    def factory(count, name="corpus.jsonl", **kwargs):
        path = tmp_path / name
        ids = make_corpus(path, count, **kwargs)
        return path, ids

    return factory
