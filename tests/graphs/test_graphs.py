"""Tests for bipartite / synergy graph construction and normalisation."""

import numpy as np
import pytest

from repro.data import Prescription, PrescriptionDataset, Vocabulary
from repro.graphs import (
    SymptomHerbGraph,
    SynergyGraph,
    add_self_loops,
    bipartite_block_matrix,
    build_herb_synergy_graph,
    build_symptom_synergy_graph,
    cooccurrence_counts,
    graph_comparison,
    row_normalise,
    summarise_degrees,
    symmetric_normalise,
)


@pytest.fixture()
def toy_dataset():
    # Mirrors the example of Section IV-B: p1=<{s1,s2},{h1,h2}>, p2=<{s1,s3},{h3,h4}>
    prescriptions = [
        Prescription((0, 1), (0, 1)),
        Prescription((0, 2), (2, 3)),
        Prescription((0, 1), (0, 1)),
    ]
    return PrescriptionDataset(
        prescriptions,
        symptom_vocab=Vocabulary.from_prefix("symptom", 3),
        herb_vocab=Vocabulary.from_prefix("herb", 4),
        name="toy",
    )


class TestSymptomHerbGraph:
    def test_edges_from_dataset(self, toy_dataset):
        graph = SymptomHerbGraph.from_dataset(toy_dataset)
        adjacency = graph.symptom_to_herb.toarray()
        expected = np.array(
            [
                [1, 1, 1, 1],
                [1, 1, 0, 0],
                [0, 0, 1, 1],
            ],
            dtype=float,
        )
        np.testing.assert_array_equal(adjacency, expected)

    def test_binary_even_for_repeated_cooccurrence(self, toy_dataset):
        graph = SymptomHerbGraph.from_dataset(toy_dataset)
        assert graph.symptom_to_herb.toarray().max() == 1.0

    def test_degrees(self, toy_dataset):
        graph = SymptomHerbGraph.from_dataset(toy_dataset)
        np.testing.assert_array_equal(graph.symptom_degrees(), [4, 2, 2])
        np.testing.assert_array_equal(graph.herb_degrees(), [2, 2, 2, 2])

    def test_density(self, toy_dataset):
        graph = SymptomHerbGraph.from_dataset(toy_dataset)
        assert graph.density() == pytest.approx(8 / 12)

    def test_mean_aggregator_rows_sum_to_one(self, toy_dataset):
        graph = SymptomHerbGraph.from_dataset(toy_dataset)
        operator = graph.mean_aggregator_symptom().toarray()
        np.testing.assert_allclose(operator.sum(axis=1), np.ones(3))
        operator_h = graph.mean_aggregator_herb().toarray()
        np.testing.assert_allclose(operator_h.sum(axis=1), np.ones(4))

    def test_neighbors(self, toy_dataset):
        graph = SymptomHerbGraph.from_dataset(toy_dataset)
        np.testing.assert_array_equal(np.sort(graph.symptom_neighbors(1)), [0, 1])
        np.testing.assert_array_equal(np.sort(graph.herb_neighbors(3)), [0, 2])

    def test_neighbors_out_of_range(self, toy_dataset):
        graph = SymptomHerbGraph.from_dataset(toy_dataset)
        with pytest.raises(ValueError):
            graph.symptom_neighbors(10)
        with pytest.raises(ValueError):
            graph.herb_neighbors(-1)

    def test_symmetric_normalised_shape_and_symmetry(self, toy_dataset):
        graph = SymptomHerbGraph.from_dataset(toy_dataset)
        operator = graph.symmetric_normalised().toarray()
        assert operator.shape == (7, 7)
        np.testing.assert_allclose(operator, operator.T, atol=1e-12)

    def test_symmetric_normalised_with_self_loops(self, toy_dataset):
        graph = SymptomHerbGraph.from_dataset(toy_dataset)
        operator = graph.symmetric_normalised(add_self_loops=True).toarray()
        assert np.all(np.diag(operator) > 0)

    def test_shape_mismatch_rejected(self):
        import scipy.sparse as sp

        with pytest.raises(ValueError):
            SymptomHerbGraph(sp.eye(3).tocsr(), num_symptoms=3, num_herbs=4)


class TestCooccurrence:
    def test_counts_symmetric(self):
        counts = cooccurrence_counts([(0, 1, 2), (0, 1)], num_items=3).toarray()
        assert counts[0, 1] == 2
        assert counts[1, 0] == 2
        assert counts[0, 2] == 1
        assert counts[1, 2] == 1
        np.testing.assert_array_equal(np.diag(counts), np.zeros(3))

    def test_empty_sets(self):
        counts = cooccurrence_counts([], num_items=4)
        assert counts.nnz == 0

    def test_duplicates_in_set_ignored(self):
        counts = cooccurrence_counts([(1, 1, 2)], num_items=3).toarray()
        assert counts[1, 2] == 1


class TestSynergyGraph:
    def test_threshold_filters_edges(self):
        counts = cooccurrence_counts([(0, 1), (0, 1), (1, 2)], num_items=3)
        graph = SynergyGraph(counts, threshold=1)
        adjacency = graph.adjacency.toarray()
        assert adjacency[0, 1] == 1
        assert adjacency[1, 2] == 0
        assert graph.num_edges == 1

    def test_threshold_zero_keeps_all(self):
        counts = cooccurrence_counts([(0, 1), (1, 2)], num_items=3)
        graph = SynergyGraph(counts, threshold=0)
        assert graph.num_edges == 2

    def test_with_threshold_resweeps(self):
        counts = cooccurrence_counts([(0, 1), (0, 1), (1, 2)], num_items=3)
        dense = SynergyGraph(counts, threshold=0)
        sparse = dense.with_threshold(1)
        assert sparse.num_edges <= dense.num_edges
        assert sparse.threshold == 1

    def test_degrees_and_density(self):
        counts = cooccurrence_counts([(0, 1), (1, 2)], num_items=4)
        graph = SynergyGraph(counts, threshold=0)
        np.testing.assert_array_equal(graph.degrees(), [1, 2, 1, 0])
        assert graph.density() == pytest.approx(4 / 12)

    def test_neighbors(self):
        counts = cooccurrence_counts([(0, 1), (1, 2)], num_items=3)
        graph = SynergyGraph(counts, threshold=0)
        np.testing.assert_array_equal(np.sort(graph.neighbors(1)), [0, 2])
        with pytest.raises(ValueError):
            graph.neighbors(99)

    def test_invalid_inputs(self):
        counts = cooccurrence_counts([(0, 1)], num_items=2)
        with pytest.raises(ValueError):
            SynergyGraph(counts, threshold=-1)
        import scipy.sparse as sp

        with pytest.raises(ValueError):
            SynergyGraph(sp.csr_matrix((2, 3)), threshold=0)

    def test_builders_use_dataset(self, toy_dataset):
        symptom_graph = build_symptom_synergy_graph(toy_dataset, threshold=0)
        herb_graph = build_herb_synergy_graph(toy_dataset, threshold=1)
        assert symptom_graph.kind == "symptom"
        assert herb_graph.kind == "herb"
        assert symptom_graph.num_nodes == toy_dataset.num_symptoms
        assert herb_graph.num_nodes == toy_dataset.num_herbs
        # (h0, h1) co-occur twice -> kept with threshold 1; (h2, h3) only once -> dropped
        assert herb_graph.adjacency.toarray()[0, 1] == 1
        assert herb_graph.adjacency.toarray()[2, 3] == 0

    def test_synergy_differs_from_second_order_bipartite(self, toy_dataset):
        """Paper Section IV-B: second-order bipartite neighbours != co-occurrence."""
        bipartite = SymptomHerbGraph.from_dataset(toy_dataset)
        herb_graph = build_herb_synergy_graph(toy_dataset, threshold=0)
        sh = bipartite.symptom_to_herb.toarray()
        second_order = (sh.T @ sh) > 0
        np.fill_diagonal(second_order, False)
        synergy = herb_graph.adjacency.toarray() > 0
        # herbs 1 and 2 share symptom 0 (second-order) but never co-occur in a prescription
        assert second_order[1, 2]
        assert not synergy[1, 2]


class TestAdjacencyHelpers:
    def test_row_normalise(self):
        matrix = np.array([[1.0, 1.0], [0.0, 0.0], [2.0, 0.0]])
        normalised = row_normalise(matrix).toarray()
        np.testing.assert_allclose(normalised[0], [0.5, 0.5])
        np.testing.assert_allclose(normalised[1], [0.0, 0.0])
        np.testing.assert_allclose(normalised[2], [1.0, 0.0])

    def test_symmetric_normalise_requires_square(self):
        with pytest.raises(ValueError):
            symmetric_normalise(np.ones((2, 3)))

    def test_symmetric_normalise_values(self):
        matrix = np.array([[0.0, 1.0], [1.0, 0.0]])
        normalised = symmetric_normalise(matrix).toarray()
        np.testing.assert_allclose(normalised, [[0.0, 1.0], [1.0, 0.0]])

    def test_add_self_loops(self):
        matrix = np.zeros((3, 3))
        looped = add_self_loops(matrix).toarray()
        np.testing.assert_array_equal(looped, np.eye(3))
        with pytest.raises(ValueError):
            add_self_loops(np.zeros((2, 3)))

    def test_bipartite_block_matrix(self):
        sh = np.array([[1.0, 0.0, 1.0], [0.0, 1.0, 0.0]])
        block = bipartite_block_matrix(sh).toarray()
        assert block.shape == (5, 5)
        np.testing.assert_array_equal(block[:2, 2:], sh)
        np.testing.assert_array_equal(block[2:, :2], sh.T)
        np.testing.assert_array_equal(block[:2, :2], np.zeros((2, 2)))


class TestDegreeStats:
    def test_summarise_degrees(self):
        summary = summarise_degrees("toy", np.array([0, 2, 4]), num_edges=3)
        assert summary.mean_degree == pytest.approx(2.0)
        assert summary.isolated_nodes == 1
        assert summary.max_degree == 4
        assert "graph" in summary.as_dict()

    def test_summarise_empty(self):
        summary = summarise_degrees("empty", np.array([]), num_edges=0)
        assert summary.num_nodes == 0

    def test_graph_comparison_density_argument(self, toy_dataset):
        bipartite = SymptomHerbGraph.from_dataset(toy_dataset)
        ss = build_symptom_synergy_graph(toy_dataset, threshold=0)
        hh = build_herb_synergy_graph(toy_dataset, threshold=0)
        comparison = graph_comparison(bipartite, ss, hh)
        assert set(comparison) == {
            "symptom-herb (symptom side)",
            "symptom-herb (herb side)",
            "symptom-symptom",
            "herb-herb",
        }
        # the bipartite graph should be denser on average than the synergy graphs
        assert (
            comparison["symptom-herb (symptom side)"].mean_degree
            >= comparison["symptom-symptom"].mean_degree
        )
