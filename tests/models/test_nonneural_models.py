"""Tests for TransE, HC-KGETM and the popularity / co-occurrence baselines."""

import numpy as np
import pytest

from repro.data import build_kg_from_corpus, build_kg_from_latent
from repro.models import (
    CooccurrenceRecommender,
    HCKGETM,
    HCKGETMConfig,
    PopularityRecommender,
    TransE,
    TransEConfig,
)


class TestTransE:
    def test_training_reduces_positive_distance(self, tiny_corpus):
        kg = build_kg_from_latent(tiny_corpus)
        config = TransEConfig(embedding_dim=16, epochs=20, learning_rate=0.05, seed=0)
        model = TransE(kg, config)
        triples = kg.triple_array()
        sample = triples[:: max(1, len(triples) // 50)]

        def mean_positive_score(m):
            return np.mean([m.score_triple(h, r, t) for h, r, t in sample])

        def mean_random_score(m, rng):
            scores = []
            for h, r, _ in sample:
                scores.append(m.score_triple(h, r, int(rng.integers(0, kg.num_entities))))
            return np.mean(scores)

        model.fit()
        rng = np.random.default_rng(0)
        assert model.is_trained
        assert mean_positive_score(model) > mean_random_score(model, rng)

    def test_embedding_shapes(self, tiny_corpus):
        kg = build_kg_from_latent(tiny_corpus)
        model = TransE(kg, TransEConfig(embedding_dim=8, epochs=1, seed=0)).fit()
        assert model.symptom_embeddings().shape == (kg.num_symptoms, 8)
        assert model.herb_embeddings().shape == (kg.num_herbs, 8)
        assert model.entity_embeddings.shape == (kg.num_entities, 8)

    def test_empty_kg_is_noop(self, tiny_corpus):
        kg = build_kg_from_corpus(tiny_corpus.dataset, symptom_threshold=10 ** 6, herb_threshold=10 ** 6)
        model = TransE(kg, TransEConfig(epochs=3, seed=0)).fit()
        assert model.is_trained

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TransEConfig(embedding_dim=0)
        with pytest.raises(ValueError):
            TransEConfig(margin=0)
        with pytest.raises(ValueError):
            TransEConfig(learning_rate=-1)
        with pytest.raises(ValueError):
            TransEConfig(batch_size=0)


class TestHCKGETM:
    @pytest.fixture(scope="class")
    def fitted_model(self, tiny_corpus, tiny_split):
        train, _ = tiny_split
        kg = build_kg_from_latent(tiny_corpus)
        config = HCKGETMConfig(num_topics=6, gibbs_iterations=3, seed=0)
        return HCKGETM(train.num_symptoms, train.num_herbs, config).fit(train, kg)

    def test_scores_shape_and_range(self, fitted_model, tiny_split):
        train, _ = tiny_split
        scores = fitted_model.score_sets([train[0].symptoms, train[1].symptoms])
        assert scores.shape == (2, train.num_herbs)
        assert np.all(scores >= 0)
        assert np.all(np.isfinite(scores))

    def test_requires_fit_before_scoring(self, tiny_split):
        train, _ = tiny_split
        model = HCKGETM(train.num_symptoms, train.num_herbs, HCKGETMConfig(num_topics=3, gibbs_iterations=1))
        with pytest.raises(RuntimeError):
            model.score_sets([train[0].symptoms])

    def test_empty_symptom_set_falls_back_to_prior(self, fitted_model, tiny_split):
        train, _ = tiny_split
        scores = fitted_model.score_sets([()])
        np.testing.assert_allclose(scores[0], fitted_model.herb_prior_)

    def test_topic_distributions_are_normalised(self, fitted_model):
        np.testing.assert_allclose(fitted_model.topic_herb_.sum(axis=1), 1.0, atol=1e-9)
        np.testing.assert_allclose(fitted_model.symptom_topic_.sum(axis=1), 1.0, atol=1e-9)

    def test_fits_without_knowledge_graph(self, tiny_split):
        train, _ = tiny_split
        model = HCKGETM(
            train.num_symptoms, train.num_herbs, HCKGETMConfig(num_topics=4, gibbs_iterations=2, seed=1)
        ).fit(train, knowledge_graph=None)
        scores = model.score_sets([train[0].symptoms])
        assert scores.shape == (1, train.num_herbs)

    def test_recommendations_better_than_random(self, fitted_model, tiny_split):
        """The topic model should hit ground-truth herbs far above chance."""
        train, test = tiny_split
        hits = 0
        total = 0
        for prescription in list(test)[:40]:
            recs = fitted_model.recommend(prescription.symptoms, k=10)
            hits += len(set(recs) & set(prescription.herbs))
            total += 10
        hit_rate = hits / total
        chance = np.mean([p.num_herbs for p in test]) / test.num_herbs
        assert hit_rate > 2 * chance

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HCKGETMConfig(num_topics=0)
        with pytest.raises(ValueError):
            HCKGETMConfig(alpha=0)
        with pytest.raises(ValueError):
            HCKGETMConfig(gibbs_iterations=0)
        with pytest.raises(ValueError):
            HCKGETMConfig(kg_weight=2.0)

    def test_vocab_mismatch_rejected(self, tiny_split):
        train, _ = tiny_split
        model = HCKGETM(train.num_symptoms + 1, train.num_herbs, HCKGETMConfig(num_topics=3, gibbs_iterations=1))
        with pytest.raises(ValueError):
            model.fit(train)


class TestPopularityBaselines:
    def test_popularity_scores_match_frequencies(self, tiny_split):
        train, _ = tiny_split
        model = PopularityRecommender(train.num_herbs).fit(train)
        scores = model.score_sets([(0,), (1, 2)])
        assert scores.shape == (2, train.num_herbs)
        np.testing.assert_allclose(scores[0], scores[1])
        freq = train.herb_frequencies()
        assert np.argmax(scores[0]) == np.argmax(freq)

    def test_popularity_requires_fit(self):
        with pytest.raises(RuntimeError):
            PopularityRecommender(5).score_sets([(0,)])

    def test_popularity_vocab_check(self, tiny_split):
        train, _ = tiny_split
        with pytest.raises(ValueError):
            PopularityRecommender(train.num_herbs + 1).fit(train)

    def test_cooccurrence_depends_on_symptoms(self, tiny_split):
        train, _ = tiny_split
        model = CooccurrenceRecommender(train.num_symptoms, train.num_herbs).fit(train)
        scores = model.score_sets([train[0].symptoms, train[1].symptoms])
        assert not np.allclose(scores[0], scores[1])

    def test_cooccurrence_beats_popularity(self, tiny_split):
        from repro.evaluation import Evaluator

        train, test = tiny_split
        evaluator = Evaluator(test, ks=(5,))
        pop = evaluator.evaluate(PopularityRecommender(train.num_herbs).fit(train))
        cooc = evaluator.evaluate(
            CooccurrenceRecommender(train.num_symptoms, train.num_herbs).fit(train)
        )
        assert cooc.metric("p@5") >= pop.metric("p@5")

    def test_cooccurrence_empty_symptoms_fall_back(self, tiny_split):
        train, _ = tiny_split
        model = CooccurrenceRecommender(train.num_symptoms, train.num_herbs).fit(train)
        scores = model.score_sets([()])
        assert np.all(np.isfinite(scores))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PopularityRecommender(0)
        with pytest.raises(ValueError):
            CooccurrenceRecommender(0, 5)
        with pytest.raises(ValueError):
            CooccurrenceRecommender(5, 5, smoothing=-1)
