"""Tests for the model registry and uniform config serialisation."""

import dataclasses

import pytest

from repro.models import (
    HCKGETM,
    MODEL_REGISTRY,
    SMGCN,
    GCMCConfig,
    HCKGETMConfig,
    HeteGCNConfig,
    ModelEntry,
    ModelRegistry,
    NGCFConfig,
    PinSageConfig,
    SMGCNConfig,
    TransEConfig,
    get_model,
    register_entry,
)
from repro.models.registry import config_defaults_from_profile


class TestRegistryContents:
    def test_zoo_names(self):
        names = MODEL_REGISTRY.names()
        for expected in (
            "HC-KGETM",
            "GC-MC",
            "PinSage",
            "NGCF",
            "HeteGCN",
            "SMGCN",
            "Bipar-GCN",
            "Bipar-GCN w/ SGE",
            "Bipar-GCN w/ SI",
        ):
            assert expected in names

    def test_neural_names_in_table_order(self):
        assert MODEL_REGISTRY.neural_names() == ("GC-MC", "PinSage", "NGCF", "HeteGCN", "SMGCN")

    def test_primary_names_start_with_baseline(self):
        primary = MODEL_REGISTRY.primary_names()
        assert primary[0] == "HC-KGETM"
        assert "Bipar-GCN" not in primary

    def test_variants_point_at_smgcn(self):
        for name in MODEL_REGISTRY.variant_names():
            assert MODEL_REGISTRY.get(name).variant_of == "SMGCN"
            assert MODEL_REGISTRY.get(name).model_class is SMGCN

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="registered models"):
            get_model("DeepHerb")

    def test_contains_and_len(self):
        assert "SMGCN" in MODEL_REGISTRY
        assert "DeepHerb" not in MODEL_REGISTRY
        assert len(MODEL_REGISTRY) >= 9

    def test_hc_kgetm_is_self_fitting(self):
        entry = get_model("HC-KGETM")
        assert not entry.needs_trainer
        assert entry.fit_kwargs is not None
        assert entry.model_class is HCKGETM

    def test_duplicate_registration_rejected(self):
        registry = ModelRegistry()
        register_entry("M", SMGCN, SMGCNConfig, SMGCN.from_dataset, registry=registry)
        with pytest.raises(ValueError, match="already registered"):
            register_entry("M", SMGCN, SMGCNConfig, SMGCN.from_dataset, registry=registry)

    def test_non_dataclass_config_rejected(self):
        registry = ModelRegistry()
        with pytest.raises(TypeError, match="dataclass"):
            registry.register(
                ModelEntry(name="X", model_class=SMGCN, config_class=int, build=SMGCN.from_dataset)
            )

    def test_entry_for_model_prefers_primary(self, tiny_split):
        train, _ = tiny_split
        config = SMGCNConfig(
            embedding_dim=8, layer_dims=(12,), symptom_threshold=2, herb_threshold=4
        )
        model = SMGCN.bipar_gcn_only(train, config)
        assert MODEL_REGISTRY.entry_for_model(model).name == "SMGCN"

    def test_entry_for_model_unregistered_class(self):
        with pytest.raises(KeyError, match="not a registered model class"):
            MODEL_REGISTRY.entry_for_model(object())


class TestConfigSerialisation:
    @pytest.mark.parametrize(
        "config",
        [
            SMGCNConfig(embedding_dim=8, layer_dims=(12, 24), message_dropout=0.1),
            GCMCConfig(embedding_dim=8, use_syndrome_mlp=False),
            PinSageConfig(embedding_dim=8, num_layers=3),
            NGCFConfig(embedding_dim=8, num_layers=1),
            HeteGCNConfig(embedding_dim=8, hidden_dim=12, attention_dim=4),
            HCKGETMConfig(num_topics=4, gibbs_iterations=2, seed=3),
            TransEConfig(embedding_dim=8, epochs=2),
        ],
    )
    def test_round_trip(self, config):
        data = config.to_dict()
        rebuilt = type(config).from_dict(data)
        assert rebuilt == config

    def test_to_dict_is_json_compatible(self):
        import json

        payload = HCKGETMConfig().to_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_tuples_become_lists(self):
        data = SMGCNConfig(layer_dims=(8, 16)).to_dict()
        assert data["layer_dims"] == [8, 16]
        assert SMGCNConfig.from_dict(data).layer_dims == (8, 16)

    def test_nested_transe_config_round_trips(self):
        config = HCKGETMConfig(transe=TransEConfig(embedding_dim=12, epochs=7))
        rebuilt = HCKGETMConfig.from_dict(config.to_dict())
        assert isinstance(rebuilt.transe, TransEConfig)
        assert rebuilt.transe.embedding_dim == 12
        assert rebuilt.transe.epochs == 7

    def test_from_dict_revalidates(self):
        data = SMGCNConfig().to_dict()
        data["embedding_dim"] = -1
        with pytest.raises(ValueError):
            SMGCNConfig.from_dict(data)

    def test_from_dict_ignores_unknown_keys(self):
        data = GCMCConfig().to_dict()
        data["not_a_field"] = 1
        assert GCMCConfig.from_dict(data) == GCMCConfig()

    def test_from_dict_unwraps_optional_nested_configs(self):
        from dataclasses import dataclass
        from typing import Optional

        from repro.models.registry import SerializableConfig

        @dataclass
        class Wrapper(SerializableConfig):
            transe: Optional[TransEConfig] = None

        rebuilt = Wrapper.from_dict({"transe": TransEConfig(embedding_dim=5).to_dict()})
        assert isinstance(rebuilt.transe, TransEConfig)
        assert rebuilt.transe.embedding_dim == 5
        assert Wrapper.from_dict({"transe": None}).transe is None


class TestProfileDefaults:
    def test_defaults_only_cover_declared_fields(self):
        from repro.experiments.datasets import get_profile

        profile = get_profile("smoke")
        gcmc = config_defaults_from_profile(GCMCConfig, profile)
        assert gcmc == {"embedding_dim": profile.embedding_dim}
        smgcn = config_defaults_from_profile(SMGCNConfig, profile)
        assert smgcn["layer_dims"] == profile.layer_dims
        assert smgcn["symptom_threshold"] == profile.symptom_threshold
        hete = config_defaults_from_profile(HeteGCNConfig, profile)
        assert hete["hidden_dim"] == profile.layer_dims[0]
        topic = config_defaults_from_profile(HCKGETMConfig, profile)
        assert topic == {
            "num_topics": profile.topic_count,
            "gibbs_iterations": profile.gibbs_iterations,
        }

    def test_default_config_applies_seed_and_overrides(self):
        from repro.experiments.datasets import get_profile

        entry = get_model("SMGCN")
        config = entry.default_config(get_profile("smoke"), seed=7, message_dropout=0.2)
        assert config.seed == 7
        assert config.message_dropout == 0.2
        assert config.embedding_dim == get_profile("smoke").embedding_dim

    def test_every_registered_config_is_a_dataclass_with_seed(self):
        for entry in MODEL_REGISTRY.entries():
            assert dataclasses.is_dataclass(entry.config_class)
            field_names = {field.name for field in dataclasses.fields(entry.config_class)}
            assert "seed" in field_names
