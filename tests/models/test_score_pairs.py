"""Tests for GraphHerbRecommender.score_pairs (pair-sliced training scores)."""

import numpy as np
import pytest

import repro.models  # noqa: F401 - populate the registry
from repro.models.registry import MODEL_REGISTRY


def _build(name, train, seed=0):
    entry = MODEL_REGISTRY.get(name)
    return entry.build(train, entry.default_config(seed=seed))


@pytest.fixture(scope="module")
def train_split(tiny_split):
    train, _ = tiny_split
    return train


class TestScorePairsValues:
    @pytest.mark.parametrize("name", MODEL_REGISTRY.neural_names())
    def test_matches_forward_slice(self, name, train_split):
        model = _build(name, train_split)
        model.eval()
        sets = train_split.symptom_sets()[:6]
        rng = np.random.default_rng(0)
        herb_ids = rng.integers(0, model.num_herbs, size=(6, 5))
        full = model(sets).data
        pair = model.score_pairs(sets, herb_ids).data
        assert pair.shape == (6, 5)
        expected = full[np.arange(6)[:, None], herb_ids]
        # Same contraction up to summation order; not bitwise (BLAS blocks the
        # full product differently) — the trainer's escape hatch covers the
        # cases that need exact full-matrix numerics.
        np.testing.assert_allclose(pair, expected, rtol=1e-12, atol=1e-12)

    def test_duplicate_and_repeated_rows_allowed(self, train_split):
        model = _build("SMGCN", train_split)
        model.eval()
        sets = train_split.symptom_sets()[:3]
        herb_ids = np.zeros((3, 4), dtype=np.int64)  # same herb repeated
        pair = model.score_pairs(sets, herb_ids).data
        # all four columns score the same herb: identical values per row
        assert np.all(pair == pair[:, :1])

    def test_gradients_flow_to_all_parameters(self, train_split):
        model = _build("SMGCN", train_split)
        model.train()
        sets = train_split.symptom_sets()[:4]
        herb_ids = np.random.default_rng(1).integers(0, model.num_herbs, size=(4, 3))
        loss = model.score_pairs(sets, herb_ids).sum()
        loss.backward()
        grads = [p.grad for p in model.parameters()]
        assert all(g is not None for g in grads)
        assert any(np.abs(g).max() > 0 for g in grads)

    def test_pair_gradients_match_equivalent_full_loss(self, train_split):
        """Summing gathered full-matrix scores gives the same gradients."""
        model = _build("NGCF", train_split)
        model.eval()  # disable dropout so both passes see identical masks
        sets = train_split.symptom_sets()[:5]
        herb_ids = np.random.default_rng(2).integers(0, model.num_herbs, size=(5, 2))

        loss_pair = model.score_pairs(sets, herb_ids).sum()
        loss_pair.backward()
        pair_grads = [p.grad.copy() for p in model.parameters()]
        for p in model.parameters():
            p.grad = None

        scores = model(sets)
        flat = scores.reshape(-1)
        rows = np.repeat(np.arange(5), 2)
        loss_full = flat.gather_rows(rows * model.num_herbs + herb_ids.ravel()).sum()
        loss_full.backward()
        for p, expected in zip(model.parameters(), pair_grads):
            np.testing.assert_allclose(p.grad, expected, rtol=1e-9, atol=1e-12)


class TestScorePairsValidation:
    def test_rejects_1d_ids(self, train_split):
        model = _build("SMGCN", train_split)
        with pytest.raises(ValueError, match="2-D"):
            model.score_pairs(train_split.symptom_sets()[:3], np.zeros(3, dtype=np.int64))

    def test_rejects_row_mismatch(self, train_split):
        model = _build("SMGCN", train_split)
        with pytest.raises(ValueError, match="rows"):
            model.score_pairs(
                train_split.symptom_sets()[:3], np.zeros((2, 4), dtype=np.int64)
            )

    def test_rejects_out_of_range_ids(self, train_split):
        model = _build("SMGCN", train_split)
        sets = train_split.symptom_sets()[:2]
        with pytest.raises(IndexError):
            model.score_pairs(sets, np.full((2, 2), model.num_herbs, dtype=np.int64))
        with pytest.raises(IndexError):
            model.score_pairs(sets, np.full((2, 2), -1, dtype=np.int64))

    def test_empty_batch_rejected_like_forward(self, train_split):
        # syndrome induction rejects empty batches for forward(); score_pairs
        # inherits the same contract
        model = _build("SMGCN", train_split)
        with pytest.raises(ValueError):
            model.score_pairs([], np.zeros((0, 3), dtype=np.int64))
