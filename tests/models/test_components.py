"""Unit tests for the SMGCN building blocks: Bipar-GCN, SGE and Syndrome Induction."""

import numpy as np
import pytest

from repro.models.components import BiparGCN, SyndromeInduction, SynergyGraphEncoder
from repro.nn import Tensor, check_gradients


def _features(rng, rows, dim):
    return Tensor(rng.normal(scale=0.1, size=(rows, dim)), requires_grad=True)


class TestBiparGCN:
    def test_output_shapes(self, tiny_graphs):
        bipartite, _, _ = tiny_graphs
        rng = np.random.default_rng(0)
        encoder = BiparGCN(bipartite, embedding_dim=8, layer_dims=(12, 16), rng=rng)
        symptoms = _features(rng, bipartite.num_symptoms, 8)
        herbs = _features(rng, bipartite.num_herbs, 8)
        out_s, out_h = encoder(symptoms, herbs)
        assert out_s.shape == (bipartite.num_symptoms, 16)
        assert out_h.shape == (bipartite.num_herbs, 16)

    def test_single_layer(self, tiny_graphs):
        bipartite, _, _ = tiny_graphs
        rng = np.random.default_rng(0)
        encoder = BiparGCN(bipartite, embedding_dim=8, layer_dims=(10,), rng=rng)
        out_s, out_h = encoder(_features(rng, bipartite.num_symptoms, 8), _features(rng, bipartite.num_herbs, 8))
        assert out_s.shape[1] == 10 and out_h.shape[1] == 10
        assert encoder.num_layers == 1

    def test_outputs_bounded_by_tanh(self, tiny_graphs):
        bipartite, _, _ = tiny_graphs
        rng = np.random.default_rng(0)
        encoder = BiparGCN(bipartite, embedding_dim=8, layer_dims=(12,), rng=rng)
        out_s, out_h = encoder(_features(rng, bipartite.num_symptoms, 8), _features(rng, bipartite.num_herbs, 8))
        assert np.all(np.abs(out_s.data) <= 1.0)
        assert np.all(np.abs(out_h.data) <= 1.0)

    def test_towers_have_separate_parameters(self, tiny_graphs):
        bipartite, _, _ = tiny_graphs
        encoder = BiparGCN(bipartite, embedding_dim=8, layer_dims=(12,), rng=np.random.default_rng(0))
        names = dict(encoder.named_parameters())
        assert "symptom_transform_0.weight" in names
        assert "herb_transform_0.weight" in names
        assert not np.allclose(
            names["symptom_transform_0.weight"].data, names["herb_transform_0.weight"].data
        )

    def test_gradients_flow_to_inputs(self, tiny_graphs):
        bipartite, _, _ = tiny_graphs
        rng = np.random.default_rng(0)
        encoder = BiparGCN(bipartite, embedding_dim=4, layer_dims=(5,), rng=rng)
        symptoms = _features(rng, bipartite.num_symptoms, 4)
        herbs = _features(rng, bipartite.num_herbs, 4)
        out_s, out_h = encoder(symptoms, herbs)
        (out_s.sum() + out_h.sum()).backward()
        assert symptoms.grad is not None and np.any(symptoms.grad != 0)
        assert herbs.grad is not None and np.any(herbs.grad != 0)

    def test_gradcheck_small(self, tiny_graphs):
        bipartite, _, _ = tiny_graphs
        rng = np.random.default_rng(1)
        encoder = BiparGCN(bipartite, embedding_dim=3, layer_dims=(3,), rng=rng)
        symptoms = _features(rng, bipartite.num_symptoms, 3)
        herbs = _features(rng, bipartite.num_herbs, 3)

        def loss_fn():
            out_s, out_h = encoder(symptoms, herbs)
            return (out_s.sum() + out_h.sum()) * 0.01

        check_gradients(loss_fn, [symptoms, herbs], atol=1e-4, rtol=1e-3)

    def test_rejects_wrong_feature_shapes(self, tiny_graphs):
        bipartite, _, _ = tiny_graphs
        rng = np.random.default_rng(0)
        encoder = BiparGCN(bipartite, embedding_dim=8, layer_dims=(8,), rng=rng)
        with pytest.raises(ValueError):
            encoder(_features(rng, bipartite.num_symptoms, 4), _features(rng, bipartite.num_herbs, 8))
        with pytest.raises(ValueError):
            encoder(_features(rng, bipartite.num_symptoms + 1, 8), _features(rng, bipartite.num_herbs, 8))

    def test_invalid_construction(self, tiny_graphs):
        bipartite, _, _ = tiny_graphs
        with pytest.raises(ValueError):
            BiparGCN(bipartite, embedding_dim=0, layer_dims=(8,))
        with pytest.raises(ValueError):
            BiparGCN(bipartite, embedding_dim=8, layer_dims=())

    def test_dropout_changes_training_output_only(self, tiny_graphs):
        bipartite, _, _ = tiny_graphs
        rng = np.random.default_rng(0)
        encoder = BiparGCN(bipartite, embedding_dim=8, layer_dims=(8,), message_dropout=0.5, rng=rng)
        symptoms = _features(rng, bipartite.num_symptoms, 8)
        herbs = _features(rng, bipartite.num_herbs, 8)
        encoder.eval()
        out1, _ = encoder(symptoms, herbs)
        out2, _ = encoder(symptoms, herbs)
        np.testing.assert_allclose(out1.data, out2.data)
        encoder.train()
        out3, _ = encoder(symptoms, herbs)
        out4, _ = encoder(symptoms, herbs)
        assert not np.allclose(out3.data, out4.data)


class TestSynergyGraphEncoder:
    def test_output_shapes(self, tiny_graphs):
        _, symptom_synergy, herb_synergy = tiny_graphs
        rng = np.random.default_rng(0)
        encoder = SynergyGraphEncoder(symptom_synergy, herb_synergy, embedding_dim=8, output_dim=16, rng=rng)
        out_s, out_h = encoder(
            _features(rng, symptom_synergy.num_nodes, 8), _features(rng, herb_synergy.num_nodes, 8)
        )
        assert out_s.shape == (symptom_synergy.num_nodes, 16)
        assert out_h.shape == (herb_synergy.num_nodes, 16)

    def test_isolated_nodes_get_zero_synergy(self, tiny_graphs):
        _, symptom_synergy, herb_synergy = tiny_graphs
        rng = np.random.default_rng(0)
        encoder = SynergyGraphEncoder(symptom_synergy, herb_synergy, embedding_dim=8, output_dim=8, rng=rng)
        out_s, _ = encoder(
            _features(rng, symptom_synergy.num_nodes, 8), _features(rng, herb_synergy.num_nodes, 8)
        )
        isolated = np.nonzero(symptom_synergy.degrees() == 0)[0]
        if isolated.size:
            np.testing.assert_allclose(out_s.data[isolated], 0.0, atol=1e-12)

    def test_sum_vs_mean_aggregator_differ(self, tiny_graphs):
        _, symptom_synergy, herb_synergy = tiny_graphs
        rng = np.random.default_rng(0)
        symptoms = _features(rng, symptom_synergy.num_nodes, 8)
        herbs = _features(rng, herb_synergy.num_nodes, 8)
        sum_encoder = SynergyGraphEncoder(
            symptom_synergy, herb_synergy, 8, 8, aggregator="sum", rng=np.random.default_rng(1)
        )
        mean_encoder = SynergyGraphEncoder(
            symptom_synergy, herb_synergy, 8, 8, aggregator="mean", rng=np.random.default_rng(1)
        )
        out_sum, _ = sum_encoder(symptoms, herbs)
        out_mean, _ = mean_encoder(symptoms, herbs)
        assert not np.allclose(out_sum.data, out_mean.data)

    def test_init_gain_scales_weights(self, tiny_graphs):
        _, symptom_synergy, herb_synergy = tiny_graphs
        small = SynergyGraphEncoder(
            symptom_synergy, herb_synergy, 8, 8, init_gain=0.01, rng=np.random.default_rng(2)
        )
        large = SynergyGraphEncoder(
            symptom_synergy, herb_synergy, 8, 8, init_gain=1.0, rng=np.random.default_rng(2)
        )
        assert np.abs(small.symptom_weight.weight.data).max() < np.abs(large.symptom_weight.weight.data).max()

    def test_invalid_arguments(self, tiny_graphs):
        _, symptom_synergy, herb_synergy = tiny_graphs
        with pytest.raises(ValueError):
            SynergyGraphEncoder(symptom_synergy, herb_synergy, 0, 8)
        with pytest.raises(ValueError):
            SynergyGraphEncoder(symptom_synergy, herb_synergy, 8, 8, aggregator="max")
        with pytest.raises(ValueError):
            SynergyGraphEncoder(symptom_synergy, herb_synergy, 8, 8, init_gain=0.0)


class TestSyndromeInduction:
    def test_mean_pooling_without_mlp(self):
        embeddings = Tensor(np.arange(12.0).reshape(4, 3))
        si = SyndromeInduction(3, use_mlp=False)
        out = si(embeddings, [(0, 1), (2,)])
        np.testing.assert_allclose(out.data[0], embeddings.data[[0, 1]].mean(axis=0))
        np.testing.assert_allclose(out.data[1], embeddings.data[2])

    def test_mlp_output_is_nonnegative(self):
        rng = np.random.default_rng(0)
        embeddings = Tensor(rng.normal(size=(6, 4)))
        si = SyndromeInduction(4, use_mlp=True, rng=rng)
        out = si(embeddings, [(0, 1, 2), (3, 4)])
        assert out.shape == (2, 4)
        assert np.all(out.data >= 0.0)

    def test_mlp_differs_from_mean(self):
        rng = np.random.default_rng(0)
        embeddings = Tensor(rng.normal(size=(6, 4)))
        mean_si = SyndromeInduction(4, use_mlp=False)
        mlp_si = SyndromeInduction(4, use_mlp=True, rng=rng)
        mean_out = mean_si(embeddings, [(0, 1)])
        mlp_out = mlp_si(embeddings, [(0, 1)])
        assert not np.allclose(mean_out.data, mlp_out.data)

    def test_permutation_invariance(self):
        rng = np.random.default_rng(0)
        embeddings = Tensor(rng.normal(size=(8, 5)))
        si = SyndromeInduction(5, use_mlp=True, rng=rng)
        out_a = si(embeddings, [(0, 3, 5)])
        out_b = si(embeddings, [(5, 0, 3)])
        np.testing.assert_allclose(out_a.data, out_b.data)

    def test_rejects_empty_sets(self):
        embeddings = Tensor(np.ones((3, 2)))
        si = SyndromeInduction(2, use_mlp=False)
        with pytest.raises(ValueError):
            si(embeddings, [])
        with pytest.raises(ValueError):
            si(embeddings, [()])

    def test_rejects_dim_mismatch(self):
        si = SyndromeInduction(4, use_mlp=False)
        with pytest.raises(ValueError):
            si(Tensor(np.ones((3, 2))), [(0,)])

    def test_gradients_reach_embeddings(self):
        embeddings = Tensor(np.random.default_rng(0).normal(size=(5, 3)), requires_grad=True)
        si = SyndromeInduction(3, use_mlp=True, rng=np.random.default_rng(1))
        out = si(embeddings, [(0, 1), (2, 3, 4)])
        out.sum().backward()
        assert embeddings.grad is not None
