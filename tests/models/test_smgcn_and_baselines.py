"""Tests for SMGCN and the neural baselines (GC-MC, PinSage, NGCF, HeteGCN)."""

import numpy as np
import pytest

from repro.models import (
    GCMC,
    GCMCConfig,
    HeteGCN,
    HeteGCNConfig,
    NGCF,
    NGCFConfig,
    PinSage,
    PinSageConfig,
    SMGCN,
    SMGCNConfig,
)


def _small_smgcn_config(**overrides):
    defaults = dict(
        embedding_dim=8,
        layer_dims=(12, 16),
        symptom_threshold=2,
        herb_threshold=4,
        seed=0,
    )
    defaults.update(overrides)
    return SMGCNConfig(**defaults)


class TestSMGCNConstruction:
    def test_from_dataset(self, tiny_split):
        train, _ = tiny_split
        model = SMGCN.from_dataset(train, _small_smgcn_config())
        assert model.num_symptoms == train.num_symptoms
        assert model.num_herbs == train.num_herbs
        assert model.describe() == "Bipar-GCN + SGE + SI"

    def test_ablation_constructors(self, tiny_split):
        train, _ = tiny_split
        assert SMGCN.bipar_gcn_only(train, _small_smgcn_config()).describe() == "Bipar-GCN"
        assert SMGCN.bipar_gcn_with_sge(train, _small_smgcn_config()).describe() == "Bipar-GCN + SGE"
        assert SMGCN.bipar_gcn_with_si(train, _small_smgcn_config()).describe() == "Bipar-GCN + SI"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SMGCNConfig(embedding_dim=0)
        with pytest.raises(ValueError):
            SMGCNConfig(layer_dims=())
        with pytest.raises(ValueError):
            SMGCNConfig(message_dropout=1.5)

    def test_synergy_required_when_enabled(self, tiny_graphs):
        bipartite, _, _ = tiny_graphs
        with pytest.raises(ValueError):
            SMGCN(bipartite, None, None, _small_smgcn_config(use_synergy=True))

    def test_parameter_count_increases_with_components(self, tiny_split):
        train, _ = tiny_split
        full = SMGCN.from_dataset(train, _small_smgcn_config())
        bipar_only = SMGCN.bipar_gcn_only(train, _small_smgcn_config())
        assert full.num_parameters() > bipar_only.num_parameters()


class TestSMGCNForward:
    def test_forward_scores_shape(self, tiny_split):
        train, _ = tiny_split
        model = SMGCN.from_dataset(train, _small_smgcn_config())
        sets = [train[0].symptoms, train[1].symptoms, train[2].symptoms]
        scores = model(sets)
        assert scores.shape == (3, train.num_herbs)

    def test_score_sets_is_deterministic_in_eval(self, tiny_split):
        train, _ = tiny_split
        model = SMGCN.from_dataset(train, _small_smgcn_config(message_dropout=0.5))
        sets = [train[0].symptoms]
        first = model.score_sets(sets)
        second = model.score_sets(sets)
        np.testing.assert_allclose(first, second)

    def test_score_sets_restores_training_mode(self, tiny_split):
        train, _ = tiny_split
        model = SMGCN.from_dataset(train, _small_smgcn_config())
        model.train()
        model.score_sets([train[0].symptoms])
        assert model.training

    def test_recommend_returns_topk_unique(self, tiny_split):
        train, _ = tiny_split
        model = SMGCN.from_dataset(train, _small_smgcn_config())
        recs = model.recommend(train[0].symptoms, k=7)
        assert len(recs) == 7
        assert len(set(recs)) == 7
        assert all(0 <= h < train.num_herbs for h in recs)

    def test_recommend_rejects_bad_k(self, tiny_split):
        train, _ = tiny_split
        model = SMGCN.from_dataset(train, _small_smgcn_config())
        with pytest.raises(ValueError):
            model.recommend(train[0].symptoms, k=0)

    def test_encode_shapes(self, tiny_split):
        train, _ = tiny_split
        model = SMGCN.from_dataset(train, _small_smgcn_config())
        symptoms, herbs = model.encode()
        assert symptoms.shape == (train.num_symptoms, 16)
        assert herbs.shape == (train.num_herbs, 16)

    def test_gradients_flow_to_all_parameters(self, tiny_split):
        train, _ = tiny_split
        model = SMGCN.from_dataset(train, _small_smgcn_config())
        scores = model([train[0].symptoms, train[1].symptoms])
        scores.sum().backward()
        missing = [name for name, p in model.named_parameters() if p.grad is None]
        assert missing == []

    def test_seed_reproducibility(self, tiny_split):
        train, _ = tiny_split
        a = SMGCN.from_dataset(train, _small_smgcn_config(seed=3))
        b = SMGCN.from_dataset(train, _small_smgcn_config(seed=3))
        np.testing.assert_allclose(
            a.score_sets([train[0].symptoms]), b.score_sets([train[0].symptoms])
        )

    def test_state_dict_roundtrip_preserves_scores(self, tiny_split):
        train, _ = tiny_split
        a = SMGCN.from_dataset(train, _small_smgcn_config(seed=1))
        b = SMGCN.from_dataset(train, _small_smgcn_config(seed=2))
        sets = [train[0].symptoms]
        assert not np.allclose(a.score_sets(sets), b.score_sets(sets))
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.score_sets(sets), b.score_sets(sets))


@pytest.mark.parametrize(
    "model_factory",
    [
        lambda train: GCMC.from_dataset(train, GCMCConfig(embedding_dim=8, seed=0)),
        lambda train: PinSage.from_dataset(train, PinSageConfig(embedding_dim=8, seed=0)),
        lambda train: NGCF.from_dataset(train, NGCFConfig(embedding_dim=8, num_layers=2, seed=0)),
        lambda train: HeteGCN.from_dataset(
            train,
            HeteGCNConfig(
                embedding_dim=8, hidden_dim=12, symptom_threshold=2, herb_threshold=4, seed=0
            ),
        ),
    ],
    ids=["GC-MC", "PinSage", "NGCF", "HeteGCN"],
)
class TestBaselineModels:
    def test_forward_shapes(self, model_factory, tiny_split):
        train, _ = tiny_split
        model = model_factory(train)
        sets = [train[0].symptoms, train[1].symptoms]
        scores = model(sets)
        assert scores.shape == (2, train.num_herbs)

    def test_score_sets_finite(self, model_factory, tiny_split):
        train, _ = tiny_split
        model = model_factory(train)
        scores = model.score_sets([train[0].symptoms])
        assert np.all(np.isfinite(scores))

    def test_gradients_flow(self, model_factory, tiny_split):
        train, _ = tiny_split
        model = model_factory(train)
        scores = model([train[0].symptoms, train[1].symptoms])
        scores.sum().backward()
        grads = [p.grad for _, p in model.named_parameters()]
        assert any(g is not None and np.any(g != 0) for g in grads)

    def test_recommend(self, model_factory, tiny_split):
        train, _ = tiny_split
        model = model_factory(train)
        recs = model.recommend(train[0].symptoms, k=5)
        assert len(recs) == 5


class TestBaselineConfigValidation:
    def test_gcmc_config(self):
        with pytest.raises(ValueError):
            GCMCConfig(embedding_dim=0)
        with pytest.raises(ValueError):
            GCMCConfig(message_dropout=1.0)

    def test_pinsage_config(self):
        with pytest.raises(ValueError):
            PinSageConfig(num_layers=0)

    def test_ngcf_config(self):
        with pytest.raises(ValueError):
            NGCFConfig(embedding_dim=-1)
        assert NGCFConfig(embedding_dim=8, num_layers=2).output_dim == 24

    def test_hetegcn_config(self):
        with pytest.raises(ValueError):
            HeteGCNConfig(hidden_dim=0)
        with pytest.raises(ValueError):
            HeteGCNConfig(message_dropout=1.2)


class TestArchitecturalContrasts:
    def test_pinsage_shares_weights_across_types(self, tiny_split):
        train, _ = tiny_split
        model = PinSage.from_dataset(train, PinSageConfig(embedding_dim=8, seed=0))
        names = [name for name, _ in model.named_parameters()]
        assert not any("symptom_transform" in n or "herb_transform" in n for n in names)
        assert any(n.startswith("transform_0") for n in names)

    def test_smgcn_has_type_specific_weights(self, tiny_split):
        train, _ = tiny_split
        model = SMGCN.from_dataset(train, _small_smgcn_config())
        names = [name for name, _ in model.named_parameters()]
        assert any("symptom_transform_0" in n for n in names)
        assert any("herb_transform_0" in n for n in names)

    def test_hetegcn_uses_mean_pool_syndrome(self, tiny_split):
        train, _ = tiny_split
        model = HeteGCN.from_dataset(
            train, HeteGCNConfig(embedding_dim=8, hidden_dim=12, symptom_threshold=2, herb_threshold=4)
        )
        assert model.syndrome_induction.mlp is None

    def test_ngcf_concatenates_layers(self, tiny_split):
        train, _ = tiny_split
        model = NGCF.from_dataset(train, NGCFConfig(embedding_dim=8, num_layers=2, seed=0))
        symptoms, herbs = model.encode()
        assert symptoms.shape[1] == 8 * 3
        assert herbs.shape[1] == 8 * 3
