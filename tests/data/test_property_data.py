"""Property-based tests for the data substrate invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Prescription, PrescriptionDataset, Vocabulary
from repro.data.loaders import batch_iterator


@st.composite
def prescription_pairs(draw, num_symptoms=20, num_herbs=30, max_prescriptions=15):
    count = draw(st.integers(min_value=1, max_value=max_prescriptions))
    pairs = []
    for _ in range(count):
        symptoms = draw(
            st.lists(st.integers(0, num_symptoms - 1), min_size=1, max_size=6, unique=True)
        )
        herbs = draw(
            st.lists(st.integers(0, num_herbs - 1), min_size=1, max_size=8, unique=True)
        )
        pairs.append((tuple(symptoms), tuple(herbs)))
    return pairs


@settings(max_examples=30, deadline=None)
@given(prescription_pairs())
def test_multi_hot_matches_sets(pairs):
    dataset = PrescriptionDataset.from_id_sets(pairs, num_symptoms=20, num_herbs=30)
    targets = dataset.herb_multi_hot()
    for row, prescription in enumerate(dataset):
        assert set(np.nonzero(targets[row])[0].tolist()) == set(prescription.herbs)
        assert targets[row].sum() == prescription.num_herbs


@settings(max_examples=30, deadline=None)
@given(prescription_pairs())
def test_frequencies_sum_to_total_occurrences(pairs):
    dataset = PrescriptionDataset.from_id_sets(pairs, num_symptoms=20, num_herbs=30)
    freq = dataset.herb_frequencies()
    assert freq.sum() == sum(p.num_herbs for p in dataset)
    assert np.all(freq >= 0)


@settings(max_examples=30, deadline=None)
@given(prescription_pairs(), st.integers(min_value=1, max_value=7))
def test_batches_partition_dataset(pairs, batch_size):
    dataset = PrescriptionDataset.from_id_sets(pairs, num_symptoms=20, num_herbs=30)
    seen = []
    for batch in batch_iterator(dataset, batch_size=batch_size, shuffle=False):
        seen.extend(batch.indices.tolist())
        assert len(batch) <= batch_size
    assert sorted(seen) == list(range(len(dataset)))


@settings(max_examples=30, deadline=None)
@given(prescription_pairs(), st.floats(min_value=0.1, max_value=0.9))
def test_split_partitions_dataset(pairs, fraction):
    dataset = PrescriptionDataset.from_id_sets(pairs, num_symptoms=20, num_herbs=30)
    if len(dataset) < 2:
        return
    train, test = dataset.train_test_split(test_fraction=fraction, rng=np.random.default_rng(0))
    assert len(train) + len(test) == len(dataset)
    assert len(train) >= 1 and len(test) >= 1


@settings(max_examples=30, deadline=None)
@given(st.lists(st.text(alphabet="abcdefgh", min_size=1, max_size=6), min_size=1, max_size=30))
def test_vocabulary_encode_decode_roundtrip(tokens):
    vocab = Vocabulary()
    vocab.add_all(tokens)
    unique_in_order = list(dict.fromkeys(tokens))
    assert vocab.tokens == unique_in_order
    assert vocab.decode(vocab.encode(unique_in_order)) == unique_in_order


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(0, 9), min_size=1, max_size=6, unique=True),
    st.lists(st.integers(0, 9), min_size=1, max_size=6, unique=True),
)
def test_prescription_is_canonical(symptoms, herbs):
    p1 = Prescription(tuple(symptoms), tuple(herbs))
    p2 = Prescription(tuple(reversed(symptoms)), tuple(reversed(herbs)))
    assert p1 == p2
    assert p1.symptoms == tuple(sorted(set(symptoms)))
