"""Tests for the synthetic corpus generator, loaders and the knowledge graph."""

import numpy as np
import pytest

from repro.data import (
    SyntheticTCMConfig,
    batch_iterator,
    build_kg_from_corpus,
    build_kg_from_latent,
    generate_corpus,
    load_corpus,
    save_corpus,
)


@pytest.fixture(scope="module")
def tiny_corpus():
    return generate_corpus(SyntheticTCMConfig.tiny(seed=7))


class TestSyntheticConfig:
    def test_defaults_valid(self):
        config = SyntheticTCMConfig()
        assert config.num_symptoms > 0

    def test_paper_scale(self):
        config = SyntheticTCMConfig.paper_scale()
        assert config.num_symptoms == 360
        assert config.num_herbs == 753
        assert config.num_prescriptions == 26360

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            SyntheticTCMConfig(num_symptoms=0)
        with pytest.raises(ValueError):
            SyntheticTCMConfig(min_symptoms=5, max_symptoms=2)
        with pytest.raises(ValueError):
            SyntheticTCMConfig(base_herb_probability=1.5)
        with pytest.raises(ValueError):
            SyntheticTCMConfig(num_base_herbs=500, num_herbs=100)
        with pytest.raises(ValueError):
            SyntheticTCMConfig(symptoms_per_syndrome=500)


class TestGenerateCorpus:
    def test_sizes(self, tiny_corpus):
        config = tiny_corpus.config
        assert len(tiny_corpus.dataset) == config.num_prescriptions
        assert tiny_corpus.dataset.num_symptoms == config.num_symptoms
        assert tiny_corpus.dataset.num_herbs == config.num_herbs
        assert tiny_corpus.num_syndromes == config.num_syndromes

    def test_deterministic_for_seed(self):
        a = generate_corpus(SyntheticTCMConfig.tiny(seed=3))
        b = generate_corpus(SyntheticTCMConfig.tiny(seed=3))
        assert a.dataset.symptom_sets() == b.dataset.symptom_sets()
        assert a.dataset.herb_sets() == b.dataset.herb_sets()

    def test_different_seeds_differ(self):
        a = generate_corpus(SyntheticTCMConfig.tiny(seed=1))
        b = generate_corpus(SyntheticTCMConfig.tiny(seed=2))
        assert a.dataset.symptom_sets() != b.dataset.symptom_sets()

    def test_set_sizes_within_bounds(self, tiny_corpus):
        config = tiny_corpus.config
        for prescription in tiny_corpus.dataset:
            # +1 allows the optional noise symptom/herb, base herbs add more
            assert config.min_symptoms <= prescription.num_symptoms <= config.max_symptoms + 1
            assert prescription.num_herbs >= config.min_herbs - 1
            assert prescription.num_herbs <= config.max_herbs + config.num_base_herbs + 1

    def test_base_herbs_are_most_frequent(self, tiny_corpus):
        config = tiny_corpus.config
        freq = tiny_corpus.dataset.herb_frequencies()
        base_mean = freq[: config.num_base_herbs].mean()
        other_mean = freq[config.num_base_herbs :].mean()
        assert base_mean > other_mean * 2

    def test_frequency_distribution_is_skewed(self, tiny_corpus):
        freq = np.sort(tiny_corpus.dataset.herb_frequencies())[::-1]
        top_share = freq[:10].sum() / freq.sum()
        assert top_share > 0.3

    def test_syndrome_structure_recorded(self, tiny_corpus):
        assert len(tiny_corpus.prescription_syndromes) == len(tiny_corpus.dataset)
        for syndromes in tiny_corpus.prescription_syndromes:
            assert 1 <= len(syndromes) <= 2

    def test_syndrome_members_in_range(self, tiny_corpus):
        config = tiny_corpus.config
        for symptoms in tiny_corpus.syndrome_symptoms.values():
            assert all(0 <= s < config.num_symptoms for s in symptoms)
        for herbs in tiny_corpus.syndrome_herbs.values():
            assert all(0 <= h < config.num_herbs for h in herbs)

    def test_symptoms_predict_syndrome_herbs(self, tiny_corpus):
        """Herbs of a prescription should mostly come from its latent syndromes."""
        hits = 0
        total = 0
        config = tiny_corpus.config
        for prescription, syndromes in zip(
            tiny_corpus.dataset, tiny_corpus.prescription_syndromes
        ):
            pool = set()
            for syndrome in syndromes:
                pool.update(tiny_corpus.syndrome_herbs[syndrome])
            pool.update(range(config.num_base_herbs))
            for herb in prescription.herbs:
                total += 1
                hits += herb in pool
        assert hits / total > 0.9


class TestLoaders:
    def test_save_load_roundtrip(self, tiny_corpus, tmp_path):
        path = tmp_path / "corpus.tsv"
        save_corpus(tiny_corpus.dataset, path)
        loaded = load_corpus(
            path,
            symptom_vocab=tiny_corpus.dataset.symptom_vocab,
            herb_vocab=tiny_corpus.dataset.herb_vocab,
        )
        assert len(loaded) == len(tiny_corpus.dataset)
        assert loaded.symptom_sets() == tiny_corpus.dataset.symptom_sets()
        assert loaded.herb_sets() == tiny_corpus.dataset.herb_sets()

    def test_load_builds_vocab_when_missing(self, tiny_corpus, tmp_path):
        path = tmp_path / "corpus.tsv"
        save_corpus(tiny_corpus.dataset, path)
        loaded = load_corpus(path)
        assert len(loaded) == len(tiny_corpus.dataset)
        assert len(loaded.symptom_vocab) <= tiny_corpus.dataset.num_symptoms

    def test_load_rejects_malformed_line(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("only_symptoms_no_tab\n", encoding="utf-8")
        with pytest.raises(ValueError):
            load_corpus(path)

    def test_load_skips_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "ok.tsv"
        path.write_text("# header\n\ns1 s2\th1\n", encoding="utf-8")
        loaded = load_corpus(path)
        assert len(loaded) == 1


class TestBatchIterator:
    def test_covers_every_prescription(self, tiny_corpus):
        dataset = tiny_corpus.dataset
        seen = []
        for batch in batch_iterator(dataset, batch_size=64, shuffle=False):
            seen.extend(batch.indices.tolist())
        assert sorted(seen) == list(range(len(dataset)))

    def test_batch_contents_consistent(self, tiny_corpus):
        dataset = tiny_corpus.dataset
        batch = next(batch_iterator(dataset, batch_size=8, shuffle=False))
        assert len(batch) == 8
        assert batch.herb_targets.shape == (8, dataset.num_herbs)
        for row, idx in enumerate(batch.indices):
            expected = set(dataset[int(idx)].herbs)
            actual = set(np.nonzero(batch.herb_targets[row])[0].tolist())
            assert actual == expected
            assert batch.symptom_sets[row] == dataset[int(idx)].symptoms

    def test_shuffle_changes_order(self, tiny_corpus):
        dataset = tiny_corpus.dataset
        first = next(batch_iterator(dataset, batch_size=32, shuffle=True, rng=np.random.default_rng(0)))
        second = next(batch_iterator(dataset, batch_size=32, shuffle=True, rng=np.random.default_rng(1)))
        assert not np.array_equal(first.indices, second.indices)

    def test_drop_last(self, tiny_corpus):
        dataset = tiny_corpus.dataset
        batch_size = 64
        batches = list(batch_iterator(dataset, batch_size=batch_size, shuffle=False, drop_last=True))
        assert all(len(b) == batch_size for b in batches)

    def test_invalid_batch_size(self, tiny_corpus):
        with pytest.raises(ValueError):
            next(batch_iterator(tiny_corpus.dataset, batch_size=0))


class TestKnowledgeGraph:
    def test_latent_kg_structure(self, tiny_corpus):
        kg = build_kg_from_latent(tiny_corpus)
        dataset = tiny_corpus.dataset
        assert kg.num_entities == dataset.num_symptoms + dataset.num_herbs + tiny_corpus.num_syndromes
        assert len(kg) > 0
        expected = sum(len(v) for v in tiny_corpus.syndrome_symptoms.values()) + sum(
            len(v) for v in tiny_corpus.syndrome_herbs.values()
        )
        assert len(kg) == expected

    def test_entity_id_layout(self, tiny_corpus):
        kg = build_kg_from_latent(tiny_corpus)
        assert kg.symptom_entity(0) == 0
        assert kg.herb_entity(0) == kg.num_symptoms
        assert kg.syndrome_entity(0) == kg.num_symptoms + kg.num_herbs

    def test_entity_id_bounds(self, tiny_corpus):
        kg = build_kg_from_latent(tiny_corpus)
        with pytest.raises(ValueError):
            kg.symptom_entity(kg.num_symptoms)
        with pytest.raises(ValueError):
            kg.herb_entity(-1)

    def test_triple_array_shape(self, tiny_corpus):
        kg = build_kg_from_latent(tiny_corpus)
        arr = kg.triple_array()
        assert arr.shape == (len(kg), 3)
        assert arr.dtype == np.int64

    def test_corpus_kg_thresholds(self, tiny_corpus):
        dense = build_kg_from_corpus(tiny_corpus.dataset, symptom_threshold=0, herb_threshold=0)
        sparse = build_kg_from_corpus(tiny_corpus.dataset, symptom_threshold=20, herb_threshold=50)
        assert len(dense) > len(sparse)

    def test_corpus_kg_rejects_negative_threshold(self, tiny_corpus):
        with pytest.raises(ValueError):
            build_kg_from_corpus(tiny_corpus.dataset, symptom_threshold=-1)
