"""Tests for vocabularies and the prescription dataset container."""

import numpy as np
import pytest

from repro.data import Prescription, PrescriptionDataset, Vocabulary


class TestVocabulary:
    def test_add_and_lookup(self):
        vocab = Vocabulary()
        idx = vocab.add("ginseng")
        assert idx == 0
        assert vocab.id_of("ginseng") == 0
        assert vocab.token_of(0) == "ginseng"

    def test_add_is_idempotent(self):
        vocab = Vocabulary()
        first = vocab.add("tuckahoe")
        second = vocab.add("tuckahoe")
        assert first == second
        assert len(vocab) == 1

    def test_encode_decode_roundtrip(self):
        vocab = Vocabulary(["a", "b", "c"])
        ids = vocab.encode(["c", "a"])
        assert ids == [2, 0]
        assert vocab.decode(ids) == ["c", "a"]

    def test_unknown_token_raises(self):
        vocab = Vocabulary(["a"])
        with pytest.raises(KeyError):
            vocab.id_of("missing")

    def test_out_of_range_id_raises(self):
        vocab = Vocabulary(["a"])
        with pytest.raises(IndexError):
            vocab.token_of(5)

    def test_contains_iter_and_tokens(self):
        vocab = Vocabulary(["x", "y"])
        assert "x" in vocab
        assert list(iter(vocab)) == ["x", "y"]
        assert vocab.tokens == ["x", "y"]

    def test_from_prefix(self):
        vocab = Vocabulary.from_prefix("herb", 3)
        assert len(vocab) == 3
        assert vocab.token_of(1) == "herb_001"

    def test_from_prefix_negative(self):
        with pytest.raises(ValueError):
            Vocabulary.from_prefix("x", -1)

    def test_rejects_empty_token(self):
        vocab = Vocabulary()
        with pytest.raises(ValueError):
            vocab.add("")

    def test_equality(self):
        assert Vocabulary(["a", "b"]) == Vocabulary(["a", "b"])
        assert Vocabulary(["a"]) != Vocabulary(["b"])


class TestPrescription:
    def test_sorts_and_deduplicates(self):
        p = Prescription((3, 1, 1), (5, 2))
        assert p.symptoms == (1, 3)
        assert p.herbs == (2, 5)
        assert p.num_symptoms == 2
        assert p.num_herbs == 2

    def test_requires_nonempty_sets(self):
        with pytest.raises(ValueError):
            Prescription((), (1,))
        with pytest.raises(ValueError):
            Prescription((1,), ())

    def test_frozen(self):
        p = Prescription((1,), (2,))
        with pytest.raises(AttributeError):
            p.symptoms = (5,)


def _toy_dataset():
    prescriptions = [
        Prescription((0, 1), (0, 1, 2)),
        Prescription((1, 2), (1, 2)),
        Prescription((0, 3), (0, 3)),
        Prescription((2, 3), (2, 3)),
    ]
    return PrescriptionDataset(
        prescriptions,
        symptom_vocab=Vocabulary.from_prefix("symptom", 4),
        herb_vocab=Vocabulary.from_prefix("herb", 4),
        name="toy",
    )


class TestPrescriptionDataset:
    def test_len_iter_getitem(self):
        data = _toy_dataset()
        assert len(data) == 4
        assert data[0].symptoms == (0, 1)
        assert sum(1 for _ in data) == 4

    def test_rejects_empty_dataset(self):
        with pytest.raises(ValueError):
            PrescriptionDataset([], Vocabulary.from_prefix("s", 1), Vocabulary.from_prefix("h", 1))

    def test_rejects_out_of_vocab_ids(self):
        with pytest.raises(ValueError):
            PrescriptionDataset(
                [Prescription((0,), (9,))],
                symptom_vocab=Vocabulary.from_prefix("s", 1),
                herb_vocab=Vocabulary.from_prefix("h", 2),
            )

    def test_herb_frequencies(self):
        data = _toy_dataset()
        np.testing.assert_array_equal(data.herb_frequencies(), [2, 2, 3, 2])

    def test_symptom_frequencies(self):
        data = _toy_dataset()
        np.testing.assert_array_equal(data.symptom_frequencies(), [2, 2, 2, 2])

    def test_top_herbs(self):
        data = _toy_dataset()
        top = data.top_herbs(k=1)
        assert top[0][0] == 2
        assert top[0][1] == 3

    def test_herb_multi_hot(self):
        data = _toy_dataset()
        targets = data.herb_multi_hot([0, 1])
        assert targets.shape == (2, 4)
        np.testing.assert_array_equal(targets[0], [1, 1, 1, 0])
        np.testing.assert_array_equal(targets[1], [0, 1, 1, 0])

    def test_symptom_multi_hot_all(self):
        data = _toy_dataset()
        matrix = data.symptom_multi_hot()
        assert matrix.shape == (4, 4)
        assert matrix.sum() == sum(p.num_symptoms for p in data)

    def test_statistics(self):
        stats = _toy_dataset().statistics()
        assert stats.num_prescriptions == 4
        assert stats.num_symptoms == 4
        assert stats.num_herbs == 4
        assert stats.num_observed_symptoms == 4
        assert stats.mean_herbs_per_prescription == pytest.approx(9 / 4)
        assert "#prescriptions" in stats.as_dict()

    def test_subset_shares_vocab(self):
        data = _toy_dataset()
        sub = data.subset([0, 2])
        assert len(sub) == 2
        assert sub.symptom_vocab is data.symptom_vocab

    def test_train_test_split_sizes(self):
        data = _toy_dataset()
        train, test = data.train_test_split(test_fraction=0.25, rng=np.random.default_rng(0))
        assert len(train) == 3
        assert len(test) == 1
        assert len(train) + len(test) == len(data)

    def test_train_test_split_disjoint(self):
        data = _toy_dataset()
        train, test = data.train_test_split(test_fraction=0.5, rng=np.random.default_rng(1))
        train_ids = {id(p) for p in train}
        test_ids = {id(p) for p in test}
        assert train_ids.isdisjoint(test_ids)

    def test_train_test_split_invalid_fraction(self):
        with pytest.raises(ValueError):
            _toy_dataset().train_test_split(test_fraction=1.5)

    def test_from_id_sets(self):
        data = PrescriptionDataset.from_id_sets(
            [((0, 1), (1,)), ((1,), (0, 1))], num_symptoms=2, num_herbs=2
        )
        assert len(data) == 2
        assert data.num_symptoms == 2
        assert data.num_herbs == 2
