"""Model catalog tests: routing, zero-downtime publish, watcher, canary.

The invariants under test are the rollout safety contract:

* a publish swaps an entry atomically — leases taken before the swap finish
  on the old generation, which is closed only when the last one drains;
* the same published version answers bit-identically before, during and
  after a rollout of *another* entry;
* failed publishes (missing, corrupt, wrong-suffix checkpoints) leave the
  entry serving exactly what it served before;
* the watcher republishes on content changes only — touches and rewrites of
  identical bytes roll nothing.
"""

import json
import threading

import pytest

from repro.api import Pipeline
from repro.experiments.datasets import get_profile
from repro.io import (
    CanaryState,
    CatalogError,
    CheckpointError,
    CheckpointWatcher,
    ModelCatalog,
)


@pytest.fixture(scope="module")
def checkpoints(tmp_path_factory):
    """Two real SMGCN checkpoints (different seeds => different answers)."""
    directory = tmp_path_factory.mktemp("catalog-ckpts")
    config = get_profile("smoke").trainer_config(epochs=1)
    paths = {}
    for name, seed in (("a", 0), ("b", 7)):
        pipeline = Pipeline("SMGCN", scale="smoke", seed=seed, trainer_config=config).fit()
        paths[name] = directory / f"smgcn-{name}.npz"
        pipeline.save(paths[name])
        pipeline.close()
    return paths


def answer(pipeline, query="0 3", k=5):
    return " ".join(pipeline.decode_herbs(pipeline.recommend(query, k=k)))


def catalog_answer(catalog, name=None, query="0 3", k=5):
    with catalog.lease(name) as pipeline:
        return answer(pipeline, query, k=k)


@pytest.fixture()
def catalog(checkpoints):
    catalog = ModelCatalog()
    catalog.add("a", Pipeline.load(checkpoints["a"]), checkpoint_path=checkpoints["a"])
    catalog.add("b", Pipeline.load(checkpoints["b"]), checkpoint_path=checkpoints["b"])
    yield catalog
    catalog.close()


class TestCatalogBasics:
    def test_first_entry_is_the_default(self, catalog):
        assert catalog.default_name == "a"
        assert catalog.names() == ["a", "b"]
        assert catalog.entry().name == "a"
        assert "a" in catalog and "missing" not in catalog

    def test_unknown_entry_names_the_served_models(self, catalog):
        with pytest.raises(CatalogError, match="unknown model 'zzz'.*a, b"):
            catalog.entry("zzz")

    def test_duplicate_add_rejected(self, catalog, checkpoints):
        with pytest.raises(CatalogError, match="already in the catalog"):
            catalog.add("a", Pipeline.load(checkpoints["a"]))

    def test_entries_answer_independently(self, catalog, checkpoints):
        baseline_a = answer(Pipeline.load(checkpoints["a"]))
        baseline_b = answer(Pipeline.load(checkpoints["b"]))
        assert catalog_answer(catalog, "a") == baseline_a
        assert catalog_answer(catalog, "b") == baseline_b
        assert catalog_answer(catalog) == baseline_a  # default routes to "a"

    def test_for_pipeline_wraps_single_entry(self, checkpoints):
        pipeline = Pipeline.load(checkpoints["a"])
        catalog = ModelCatalog.for_pipeline(pipeline, checkpoint_path=checkpoints["a"])
        try:
            assert catalog.names() == ["SMGCN"]
            with catalog.lease() as leased:
                assert leased is pipeline
            assert catalog.entry().version.fingerprint is not None
        finally:
            catalog.close()

    def test_describe_is_json_clean(self, catalog):
        records = catalog.describe()
        assert [record["name"] for record in records] == ["a", "b"]
        assert records[0]["default"] and not records[1]["default"]
        assert all(record["version"] == 1 for record in records)
        json.dumps(records)  # must serialise without a custom encoder


class TestPublish:
    def test_publish_bumps_version_and_changes_answers(self, catalog, checkpoints):
        before = catalog_answer(catalog, "a")
        expected = answer(Pipeline.load(checkpoints["b"]))
        version = catalog.publish("a", checkpoints["b"])
        assert version.ordinal == 2
        assert version.fingerprint
        assert catalog.entry("a").versions[0].ordinal == 1
        assert catalog_answer(catalog, "a") == expected
        assert catalog_answer(catalog, "a") != before

    def test_other_entries_bit_identical_across_a_rollout(self, catalog, checkpoints):
        before = catalog_answer(catalog, "b")
        with catalog.lease("b") as held:
            during_held = answer(held)
            catalog.publish("a", checkpoints["b"])
            assert answer(held) == before  # mid-rollout, on a live lease
        assert catalog_answer(catalog, "b") == before == during_held

    def test_inflight_lease_drains_on_old_generation(self, catalog, checkpoints):
        entry = catalog.entry("a")
        with entry.lease() as old_pipeline:
            old_answer = answer(old_pipeline)
            catalog.publish("a", checkpoints["b"])
            # the swap happened, but this lease still scores the old weights
            assert answer(old_pipeline) == old_answer
            assert entry.draining == 1
            assert entry.pipeline is not old_pipeline
        assert entry.draining == 0  # last lease out closed the old generation

    def test_failed_publish_leaves_entry_serving(self, catalog, tmp_path, checkpoints):
        before = catalog_answer(catalog, "a")
        with pytest.raises(CheckpointError, match="no such file"):
            catalog.publish("a", tmp_path / "missing.npz")
        bad_suffix = tmp_path / "weights.bin"
        bad_suffix.write_bytes(b"not a checkpoint")
        with pytest.raises(CheckpointError, match="not a .npz checkpoint"):
            catalog.publish("a", bad_suffix)
        corrupt = tmp_path / "corrupt.npz"
        corrupt.write_bytes(b"PK\x03\x04 definitely not a bundle")
        with pytest.raises(Exception):
            catalog.publish("a", corrupt)
        entry = catalog.entry("a")
        assert entry.last_error is not None
        assert entry.version.ordinal == 1
        assert catalog_answer(catalog, "a") == before
        # a later good publish clears the sticky error
        catalog.publish("a", checkpoints["a"])
        assert catalog.entry("a").last_error is None

    def test_publish_unknown_name_adds_an_entry(self, checkpoints):
        catalog = ModelCatalog()
        try:
            version = catalog.publish("fresh", checkpoints["a"])
            assert version.ordinal == 1
            assert catalog.names() == ["fresh"]
            assert catalog.default_name == "fresh"
            assert catalog_answer(catalog, "fresh") == answer(
                Pipeline.load(checkpoints["a"])
            )
        finally:
            catalog.close()

    def test_publish_reuses_the_entrys_serving_knobs(self, checkpoints):
        catalog = ModelCatalog()
        try:
            catalog.add(
                "sharded",
                Pipeline.load(checkpoints["a"], num_shards=2, backend="threads"),
                checkpoint_path=checkpoints["a"],
            )
            catalog.publish("sharded", checkpoints["b"])
            rolled = catalog.entry("sharded").pipeline
            assert rolled.num_shards == 2
            assert rolled.backend == "threads"
        finally:
            catalog.close()

    def test_concurrent_traffic_during_publish_never_errors(self, catalog, checkpoints):
        answers = {
            1: answer(Pipeline.load(checkpoints["a"])),
            2: answer(Pipeline.load(checkpoints["b"])),
        }
        failures = []
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                try:
                    assert catalog_answer(catalog, "a") in answers.values()
                except Exception as error:  # noqa: BLE001
                    failures.append(error)
                    return

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for target in (checkpoints["b"], checkpoints["a"], checkpoints["b"]):
                catalog.publish("a", target)
        finally:
            stop.set()
            for thread in threads:
                thread.join(30)
        assert not failures, f"a request failed mid-rollout: {failures[0]}"


class TestCheckpointWatcher:
    def test_content_change_publishes(self, catalog, checkpoints, tmp_path):
        rolling = tmp_path / "rolling.npz"
        rolling.write_bytes(checkpoints["a"].read_bytes())
        catalog.publish("a", rolling)
        watcher = CheckpointWatcher(catalog, interval_s=0.01)
        watcher.watch("a", rolling)
        assert watcher.poll_once() == []  # baseline: current bytes roll nothing
        rolling.write_bytes(checkpoints["b"].read_bytes())
        assert watcher.poll_once() == ["a"]
        assert catalog.entry("a").version.ordinal == 3
        assert catalog_answer(catalog, "a") == answer(Pipeline.load(checkpoints["b"]))

    def test_touch_without_content_change_rolls_nothing(self, catalog, checkpoints, tmp_path):
        import os

        rolling = tmp_path / "rolling.npz"
        rolling.write_bytes(checkpoints["a"].read_bytes())
        watcher = CheckpointWatcher(catalog, interval_s=0.01)
        watcher.watch("a", rolling)
        os.utime(rolling, (0, 0))
        assert watcher.poll_once() == []
        assert catalog.entry("a").version.ordinal == 1

    def test_corrupt_write_recorded_then_retried_when_fixed(
        self, catalog, checkpoints, tmp_path
    ):
        rolling = tmp_path / "rolling.npz"
        rolling.write_bytes(checkpoints["a"].read_bytes())
        catalog.publish("a", rolling)
        watcher = CheckpointWatcher(catalog, interval_s=0.01)
        watcher.watch("a", rolling)
        rolling.write_bytes(b"PK\x03\x04 torn mid-write")  # trainer still writing
        assert watcher.poll_once() == []  # failure stays in-band
        assert catalog.entry("a").version.ordinal == 2  # still serving the old one
        assert catalog.entry("a").last_error is not None
        rolling.write_bytes(checkpoints["b"].read_bytes())  # write completes
        assert watcher.poll_once() == ["a"]
        assert catalog.entry("a").version.ordinal == 3

    def test_thread_lifecycle(self, catalog):
        watcher = CheckpointWatcher(catalog, interval_s=0.01)
        with watcher:
            assert watcher._thread.is_alive()
            with pytest.raises(RuntimeError, match="already running"):
                watcher.start()
        assert watcher._thread is None

    def test_rejects_non_positive_interval(self, catalog):
        with pytest.raises(ValueError):
            CheckpointWatcher(catalog, interval_s=0.0)


class TestCanary:
    def test_fraction_validation(self):
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(CatalogError, match="fraction"):
                CanaryState(pipeline=None, fraction=bad)

    def test_take_is_deterministic(self):
        canary = CanaryState(pipeline=None, fraction=0.25)
        pattern = [canary.take() for _ in range(8)]
        assert pattern == [False, False, False, True] * 2

    def test_full_fraction_mirrors_everything(self):
        canary = CanaryState(pipeline=None, fraction=1.0)
        assert all(canary.take() for _ in range(5))

    def test_report_aggregates(self):
        canary = CanaryState(pipeline=None, fraction=1.0)
        canary.take()
        canary.take()
        canary.record(matched=True, score_delta=0.5, primary_ms=2.0, shadow_ms=4.0)
        canary.record(matched=False, score_delta=-1.5, primary_ms=4.0, shadow_ms=2.0)
        canary.record_error()
        report = canary.report()
        assert report["seen"] == 2
        assert report["mirrored"] == 2
        assert report["errors"] == 1
        assert report["match_rate"] == 0.5
        assert report["mean_score_delta"] == 1.0  # mean of |deltas|
        assert report["mean_primary_ms"] == 3.0
        assert report["mean_shadow_ms"] == 3.0

    def test_set_and_clear_on_catalog(self, catalog, checkpoints):
        canary = catalog.set_canary("a", checkpoints["b"], fraction=0.5)
        assert catalog.entry("a").canary is canary
        assert "canary" in json.dumps(catalog.describe())
        report = catalog.clear_canary("a")
        assert report["fraction"] == 0.5
        assert catalog.entry("a").canary is None
        assert catalog.clear_canary("a") is None


class TestApproxRetrievalRollout:
    """The approx tier composes with zero-downtime rollout.

    The quantized index is parameter-version-stamped inside the engine, so a
    publish must (1) keep serving the entry's retrieval knobs and (2) answer
    from the *new* weights' quantization — never a stale one — while the old
    generation's approx cache dies with its drained engine.
    """

    def test_publish_preserves_knobs_and_quantization_follows_weights(self, checkpoints):
        catalog = ModelCatalog()
        try:
            catalog.add(
                "approx",
                Pipeline.load(checkpoints["a"], retrieval="approx", candidate_factor=2),
                checkpoint_path=checkpoints["a"],
            )
            fresh_a = Pipeline.load(checkpoints["a"], retrieval="approx", candidate_factor=2)
            fresh_b = Pipeline.load(checkpoints["b"], retrieval="approx", candidate_factor=2)
            assert catalog.entry("approx").pipeline.engine.retrieval_active
            assert catalog_answer(catalog, "approx") == answer(fresh_a)
            with catalog.entry("approx").lease() as old_pipeline:
                old_engine = old_pipeline.engine
                assert len(old_engine._approx_cache) == 1
                catalog.publish("approx", checkpoints["b"])
                # the drained generation still answers from its own quantization
                assert answer(old_pipeline) == answer(fresh_a)
            assert old_engine._approx_cache == {}, "drained engine kept a quantized index"
            rolled = catalog.entry("approx").pipeline
            assert rolled.retrieval == "approx"
            assert rolled.candidate_factor == 2
            assert catalog_answer(catalog, "approx") == answer(fresh_b)
            status = rolled.engine.backend_status()
            assert status["retrieval"] == "approx"
            assert status["approx_requests"] >= 1
        finally:
            catalog.close()


class TestVersionHistory:
    def test_history_is_bounded(self, checkpoints):
        from repro.io import MAX_VERSION_HISTORY
        from repro.io.catalog import ModelVersion

        catalog = ModelCatalog()
        try:
            catalog.add("a", Pipeline.load(checkpoints["a"]), checkpoint_path=checkpoints["a"])
            entry = catalog.entry("a")
            # simulate a long rollout history without paying for real publishes
            for ordinal in range(2, MAX_VERSION_HISTORY + 10):
                entry._swap(
                    Pipeline.load(checkpoints["a"]),
                    ModelVersion(ordinal, str(checkpoints["a"]), None, 0.0),
                )
            assert len(entry.versions) == MAX_VERSION_HISTORY
            assert entry.versions[-1].ordinal == MAX_VERSION_HISTORY + 9
        finally:
            catalog.close()
