"""Checkpoint round-trip tests for every registered model.

The guarantee under test: a trained model saved to a single ``.npz`` bundle
and loaded back produces **bit-identical** ``score_sets`` output, without the
Trainer ever running during the load; and loading refuses mismatched
vocabularies or state shapes instead of silently mis-scoring.
"""

import numpy as np
import pytest

from repro.data.prescriptions import PrescriptionDataset
from repro.data.vocab import Vocabulary
from repro.experiments.datasets import experiment_split
from repro.experiments.runners import train_registered_model
from repro.io import (
    CheckpointError,
    load_checkpoint,
    read_checkpoint_header,
    save_checkpoint,
    vocab_fingerprint,
)
from repro.models import MODEL_REGISTRY
from repro.models.base import GraphHerbRecommender
from repro.training import TrainerConfig

QUERIES = [(0, 1, 2), (3,), (5, 7)]

FAST_FIT = {
    # keep the per-model fitting cheap; the round-trip, not the quality, matters
    "HC-KGETM": dict(num_topics=4, gibbs_iterations=1),
}


@pytest.fixture(scope="module")
def smoke_train():
    train, _ = experiment_split("smoke")
    return train


def _fit(name):
    overrides = FAST_FIT.get(name, {})
    trainer_config = None
    if MODEL_REGISTRY.get(name).needs_trainer:
        trainer_config = TrainerConfig(epochs=1, batch_size=64, learning_rate=5e-3)
    model, _ = train_registered_model(
        name, scale="smoke", trainer_config=trainer_config, **overrides
    )
    return model


class TestRoundTrip:
    @pytest.mark.parametrize("name", MODEL_REGISTRY.names())
    def test_bit_identical_scores_after_reload(self, name, smoke_train, tmp_path, monkeypatch):
        model = _fit(name)
        expected = model.score_sets(QUERIES)
        path = save_checkpoint(model, tmp_path / "model.npz", smoke_train, name=name, scale="smoke")

        def boom(*args, **kwargs):  # training during load is the bug this PR removes
            raise AssertionError("Trainer.fit must not run when loading a checkpoint")

        monkeypatch.setattr("repro.training.trainer.Trainer.fit", boom)
        loaded, header = load_checkpoint(path, smoke_train)
        assert header.model_name == name
        assert header.scale == "smoke"
        assert type(loaded) is type(model)
        if isinstance(loaded, GraphHerbRecommender):
            assert loaded.propagation_count == 0  # nothing ran yet
        actual = loaded.score_sets(QUERIES)
        np.testing.assert_array_equal(actual, expected)

    def test_variant_flags_survive(self, smoke_train, tmp_path):
        model = _fit("Bipar-GCN")
        path = save_checkpoint(
            model, tmp_path / "v.npz", smoke_train, name="Bipar-GCN", scale="smoke"
        )
        loaded, _ = load_checkpoint(path, smoke_train)
        assert loaded.describe() == "Bipar-GCN"
        assert not loaded.config.use_synergy
        assert not loaded.config.use_syndrome_mlp

    def test_header_is_cheap_and_complete(self, smoke_train, tmp_path):
        model = _fit("GC-MC")
        path = save_checkpoint(model, tmp_path / "m.npz", smoke_train, name="GC-MC", scale="smoke")
        header = read_checkpoint_header(path)
        assert header.model_name == "GC-MC"
        assert header.model_class == "GCMC"
        assert header.num_symptoms == smoke_train.num_symptoms
        assert header.num_herbs == smoke_train.num_herbs
        assert header.config["embedding_dim"] == model.config.embedding_dim
        assert set(header.state_keys) == set(model.state_dict())

    def test_inferred_name_matches_primary_entry(self, smoke_train, tmp_path):
        model = _fit("SMGCN")
        path = save_checkpoint(model, tmp_path / "m.npz", smoke_train, scale="smoke")
        assert read_checkpoint_header(path).model_name == "SMGCN"


class TestRefusals:
    @pytest.fixture(scope="class")
    def saved(self, tmp_path_factory):
        train, _ = experiment_split("smoke")
        model = _fit("SMGCN")
        path = save_checkpoint(
            model, tmp_path_factory.mktemp("ckpt") / "m.npz", train, name="SMGCN", scale="smoke"
        )
        return path, train

    def test_vocab_size_mismatch_refused(self, saved):
        path, _ = saved
        bigger, _ = experiment_split("default")
        with pytest.raises(CheckpointError, match="vocabulary size mismatch"):
            load_checkpoint(path, bigger)

    def test_vocab_fingerprint_mismatch_refused(self, saved):
        path, train = saved
        renamed = PrescriptionDataset(
            list(train),
            Vocabulary(f"sym_{i}" for i in range(train.num_symptoms)),
            train.herb_vocab,
            name="renamed",
        )
        with pytest.raises(CheckpointError, match="symptom vocabulary fingerprint"):
            load_checkpoint(path, renamed)
        renamed_herbs = PrescriptionDataset(
            list(train),
            train.symptom_vocab,
            Vocabulary(f"h_{i}" for i in range(train.num_herbs)),
            name="renamed-herbs",
        )
        with pytest.raises(CheckpointError, match="herb vocabulary fingerprint"):
            load_checkpoint(path, renamed_herbs)

    def test_state_shape_mismatch_refused(self, saved, tmp_path):
        path, train = saved
        with np.load(path, allow_pickle=False) as data:
            arrays = {key: data[key] for key in data.files}
        state_keys = [key for key in arrays if key.startswith("state/") and arrays[key].ndim == 2]
        arrays[state_keys[0]] = arrays[state_keys[0]][:, :-1]  # truncate one matrix
        tampered = tmp_path / "tampered.npz"
        with open(tampered, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(CheckpointError, match="does not fit"):
            load_checkpoint(tampered, train)

    def test_missing_state_key_refused(self, saved, tmp_path):
        path, train = saved
        with np.load(path, allow_pickle=False) as data:
            arrays = {key: data[key] for key in data.files}
        dropped = next(key for key in arrays if key.startswith("state/"))
        del arrays[dropped]
        tampered = tmp_path / "missing.npz"
        with open(tampered, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(CheckpointError, match="does not fit"):
            load_checkpoint(tampered, train)

    def test_unregistered_model_name_refused(self, saved, tmp_path):
        import json

        path, train = saved
        with np.load(path, allow_pickle=False) as data:
            arrays = {key: data[key] for key in data.files}
        header = json.loads(str(arrays["__checkpoint_header__"][()]))
        header["model_name"] = "DeepHerb"
        arrays["__checkpoint_header__"] = np.array(json.dumps(header))
        tampered = tmp_path / "unknown.npz"
        with open(tampered, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(CheckpointError, match="unregistered model"):
            load_checkpoint(tampered, train)

    def test_not_a_checkpoint_refused(self, tmp_path):
        train, _ = experiment_split("smoke")
        bogus = tmp_path / "bogus.npz"
        with open(bogus, "wb") as handle:
            np.savez(handle, something=np.zeros(3))
        with pytest.raises(CheckpointError, match="missing header"):
            read_checkpoint_header(bogus)
        with pytest.raises(CheckpointError, match="missing header"):
            load_checkpoint(bogus, train)

    def test_wrong_dataset_at_save_time_refused(self, tmp_path):
        train, _ = experiment_split("smoke")
        model = _fit("GC-MC")
        other, _ = experiment_split("default")
        with pytest.raises(CheckpointError, match="do not match the model"):
            save_checkpoint(model, tmp_path / "m.npz", other, name="GC-MC")

    def test_name_class_mismatch_at_save_refused(self, tmp_path):
        train, _ = experiment_split("smoke")
        model = _fit("GC-MC")
        with pytest.raises(CheckpointError, match="registered for"):
            save_checkpoint(model, tmp_path / "m.npz", train, name="PinSage")


class TestFingerprint:
    def test_fingerprint_is_order_sensitive(self):
        a = Vocabulary(["x", "y"])
        b = Vocabulary(["y", "x"])
        assert vocab_fingerprint(a) != vocab_fingerprint(b)

    def test_fingerprint_is_deterministic(self):
        a = Vocabulary(["x", "y"])
        b = Vocabulary(["x", "y"])
        assert vocab_fingerprint(a) == vocab_fingerprint(b)
