"""Tests for the CSR pooling builder and the sparse ``scatter_mean``.

The seed's dense ``pool[i, indices] = 1/len`` assignment silently dropped
duplicate ids inside a set, so ``[2, 2]`` pooled to ``0.5 * row2`` instead of
``row2``.  The sparse rewrite must compute the exact multiset mean.
"""

import numpy as np
import pytest

from repro.nn import Tensor, build_pooling_matrix, scatter_mean


class TestBuildPoolingMatrix:
    def test_mean_weights(self):
        pool = build_pooling_matrix([(0, 2)], num_columns=4).toarray()
        np.testing.assert_allclose(pool, [[0.5, 0.0, 0.5, 0.0]])

    def test_duplicates_accumulate(self):
        pool = build_pooling_matrix([(1, 1, 3)], num_columns=4).toarray()
        np.testing.assert_allclose(pool, [[0.0, 2.0 / 3.0, 0.0, 1.0 / 3.0]])

    def test_sum_mode(self):
        pool = build_pooling_matrix([(0, 0, 1)], num_columns=3, normalize="sum").toarray()
        np.testing.assert_allclose(pool, [[2.0, 1.0, 0.0]])

    def test_empty_set_gives_zero_row(self):
        pool = build_pooling_matrix([(), (1,)], num_columns=3).toarray()
        np.testing.assert_allclose(pool, [[0.0, 0.0, 0.0], [0.0, 1.0, 0.0]])

    def test_no_sets(self):
        pool = build_pooling_matrix([], num_columns=3)
        assert pool.shape == (0, 3)

    def test_all_empty_sets(self):
        pool = build_pooling_matrix([(), ()], num_columns=3).toarray()
        np.testing.assert_allclose(pool, np.zeros((2, 3)))

    def test_out_of_range_rejected(self):
        with pytest.raises(IndexError):
            build_pooling_matrix([(3,)], num_columns=3)
        with pytest.raises(IndexError):
            build_pooling_matrix([(-1,)], num_columns=3)

    def test_invalid_normalize_rejected(self):
        with pytest.raises(ValueError):
            build_pooling_matrix([(0,)], num_columns=2, normalize="max")
        with pytest.raises(ValueError):
            build_pooling_matrix([(0,)], num_columns=0)


class TestScatterMean:
    def test_duplicate_ids_exact_mean(self):
        table = Tensor(np.arange(12, dtype=np.float64).reshape(4, 3))
        pooled = scatter_mean(table, [(2, 2)]).data
        # the multiset mean of {row2, row2} is row2 itself — the seed's dense
        # pooling matrix returned 0.5 * row2 here
        np.testing.assert_allclose(pooled, table.data[2][None, :])

    def test_mixed_duplicates(self):
        table = Tensor(np.array([[1.0, 10.0], [2.0, 20.0], [4.0, 40.0]]))
        pooled = scatter_mean(table, [(0, 0, 1)]).data
        np.testing.assert_allclose(pooled, [[4.0 / 3.0, 40.0 / 3.0]])

    def test_matches_numpy_mean_without_duplicates(self):
        rng = np.random.default_rng(3)
        table = Tensor(rng.normal(size=(20, 5)))
        sets = [tuple(rng.choice(20, size=size, replace=False)) for size in (1, 3, 7)]
        pooled = scatter_mean(table, sets).data
        expected = np.stack([table.data[list(s)].mean(axis=0) for s in sets])
        np.testing.assert_allclose(pooled, expected)

    def test_matches_numpy_mean_with_duplicates(self):
        rng = np.random.default_rng(4)
        table = Tensor(rng.normal(size=(10, 4)))
        sets = [tuple(rng.integers(0, 10, size=size)) for size in (2, 5, 9)]
        pooled = scatter_mean(table, sets).data
        expected = np.stack([table.data[list(s)].mean(axis=0) for s in sets])
        np.testing.assert_allclose(pooled, expected)

    def test_empty_set_pools_to_zero(self):
        table = Tensor(np.ones((3, 2)))
        pooled = scatter_mean(table, [(), (0,)]).data
        np.testing.assert_allclose(pooled, [[0.0, 0.0], [1.0, 1.0]])

    def test_gradient_flows_through_sparse_pooling(self):
        table = Tensor(np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]), requires_grad=True)
        pooled = scatter_mean(table, [(0, 0, 2)])
        pooled.sum().backward()
        # d(sum)/d(row) is the total pooling weight that row received
        np.testing.assert_allclose(table.grad, [[2.0 / 3.0] * 2, [0.0] * 2, [1.0 / 3.0] * 2])
