"""Property-based tests (hypothesis) for the autograd engine invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import Tensor, concat, herb_frequency_weights, softmax

finite_floats = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False)


def small_matrices(max_side=6):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=max_side),
        elements=finite_floats,
    )


@settings(max_examples=40, deadline=None)
@given(small_matrices())
def test_add_is_commutative(x):
    a = Tensor(x)
    b = Tensor(np.flip(x, axis=0).copy())
    np.testing.assert_allclose((a + b).data, (b + a).data)


@settings(max_examples=40, deadline=None)
@given(small_matrices())
def test_sum_gradient_is_ones(x):
    t = Tensor(x, requires_grad=True)
    t.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(x))


@settings(max_examples=40, deadline=None)
@given(small_matrices())
def test_mean_equals_sum_over_size(x):
    t = Tensor(x)
    np.testing.assert_allclose(t.mean().item(), t.sum().item() / x.size, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(small_matrices())
def test_double_transpose_is_identity(x):
    t = Tensor(x)
    np.testing.assert_allclose(t.T.T.data, x)


@settings(max_examples=40, deadline=None)
@given(small_matrices())
def test_tanh_bounded(x):
    out = Tensor(x).tanh().data
    assert np.all(out <= 1.0) and np.all(out >= -1.0)


@settings(max_examples=40, deadline=None)
@given(small_matrices())
def test_relu_non_negative_and_idempotent(x):
    t = Tensor(x)
    once = t.relu()
    twice = once.relu()
    assert np.all(once.data >= 0)
    np.testing.assert_allclose(once.data, twice.data)


@settings(max_examples=40, deadline=None)
@given(small_matrices())
def test_softmax_rows_are_distributions(x):
    probs = softmax(Tensor(x), axis=1).data
    assert np.all(probs >= 0)
    np.testing.assert_allclose(probs.sum(axis=1), np.ones(x.shape[0]), atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(small_matrices(), small_matrices())
def test_concat_preserves_content(x, y):
    rows = min(x.shape[0], y.shape[0])
    a, b = Tensor(x[:rows]), Tensor(y[:rows])
    merged = concat([a, b], axis=1).data
    np.testing.assert_allclose(merged[:, : x.shape[1]], x[:rows])
    np.testing.assert_allclose(merged[:, x.shape[1]:], y[:rows])


@settings(max_examples=40, deadline=None)
@given(
    arrays(
        dtype=np.float64,
        shape=st.integers(min_value=1, max_value=30),
        elements=st.integers(min_value=0, max_value=1000).map(float),
    )
)
def test_frequency_weights_properties(freq):
    weights = herb_frequency_weights(freq)
    assert weights.shape == freq.shape
    assert np.all(weights >= 1.0) or freq.max() == 0
    positive = freq > 0
    if positive.any() and freq.max() > 0:
        # the most frequent herb always has weight exactly 1
        assert np.isclose(weights[np.argmax(freq)], 1.0)


@settings(max_examples=30, deadline=None)
@given(small_matrices(max_side=5), small_matrices(max_side=5))
def test_matmul_gradient_shapes(x, y):
    a = Tensor(x, requires_grad=True)
    b = Tensor(np.resize(y, (x.shape[1], y.shape[1])), requires_grad=True)
    out = (a @ b).sum()
    out.backward()
    assert a.grad.shape == a.shape
    assert b.grad.shape == b.shape
