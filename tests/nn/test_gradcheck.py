"""Finite-difference gradient checks for every autograd op used by the models."""

import numpy as np
import pytest

from repro.nn import SparseMatrix, Tensor, check_gradients, concat, softmax, sparse_matmul

RNG = np.random.default_rng(12345)


def _tensor(shape):
    return Tensor(RNG.normal(size=shape), requires_grad=True)


class TestElementwiseGradients:
    def test_add_mul(self):
        a, b = _tensor((3, 4)), _tensor((3, 4))
        check_gradients(lambda: ((a + b) * (a - b)).sum(), [a, b])

    def test_div(self):
        a = _tensor((2, 3))
        b = Tensor(RNG.uniform(0.5, 2.0, size=(2, 3)), requires_grad=True)
        check_gradients(lambda: (a / b).sum(), [a, b])

    def test_broadcast_add(self):
        a = _tensor((4, 3))
        b = _tensor((3,))
        check_gradients(lambda: ((a + b) ** 2).sum(), [a, b])

    def test_pow(self):
        a = Tensor(RNG.uniform(0.5, 2.0, size=(5,)), requires_grad=True)
        check_gradients(lambda: (a ** 3).sum(), [a])


class TestActivationGradients:
    def test_tanh(self):
        a = _tensor((3, 3))
        check_gradients(lambda: a.tanh().sum(), [a])

    def test_relu(self):
        # Keep values away from the kink at zero for a clean numeric estimate.
        a = Tensor(RNG.choice([-1.0, 1.0], size=(4, 4)) * RNG.uniform(0.5, 1.5, size=(4, 4)), requires_grad=True)
        check_gradients(lambda: a.relu().sum(), [a])

    def test_sigmoid(self):
        a = _tensor((3, 2))
        check_gradients(lambda: a.sigmoid().sum(), [a])

    def test_exp_log(self):
        a = Tensor(RNG.uniform(0.5, 1.5, size=(4,)), requires_grad=True)
        check_gradients(lambda: (a.exp().log() * a).sum(), [a])

    def test_softmax(self):
        a = _tensor((2, 5))
        weights = Tensor(RNG.normal(size=(2, 5)))
        check_gradients(lambda: (softmax(a, axis=1) * weights).sum(), [a])


class TestLinearAlgebraGradients:
    def test_matmul(self):
        a, b = _tensor((3, 4)), _tensor((4, 2))
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_matmul_chain(self):
        a, b, c = _tensor((2, 3)), _tensor((3, 4)), _tensor((4, 2))
        check_gradients(lambda: ((a @ b) @ c).tanh().sum(), [a, b, c])

    def test_transpose(self):
        a = _tensor((3, 5))
        b = _tensor((3, 5))
        check_gradients(lambda: (a.T @ b).sum(), [a, b])

    def test_concat(self):
        a, b = _tensor((3, 2)), _tensor((3, 4))
        w = _tensor((6, 1))
        check_gradients(lambda: (concat([a, b], axis=1) @ w).sum(), [a, b, w])

    def test_gather_rows(self):
        table = _tensor((6, 3))
        idx = np.array([0, 2, 2, 5])
        weights = Tensor(RNG.normal(size=(4, 3)))
        check_gradients(lambda: (table.gather_rows(idx) * weights).sum(), [table])

    def test_mean_reduction(self):
        a = _tensor((4, 5))
        check_gradients(lambda: (a.mean(axis=0) ** 2).sum(), [a])


class TestSparseGradients:
    def test_sparse_matmul_matches_dense(self):
        dense_adj = (RNG.random((5, 7)) < 0.4).astype(float)
        sparse = SparseMatrix(dense_adj)
        x = _tensor((7, 3))
        out_sparse = sparse_matmul(sparse, x)
        out_dense = Tensor(dense_adj) @ x
        np.testing.assert_allclose(out_sparse.data, out_dense.data)

    def test_sparse_matmul_gradient(self):
        dense_adj = (RNG.random((4, 6)) < 0.5).astype(float)
        sparse = SparseMatrix(dense_adj)
        x = _tensor((6, 2))
        check_gradients(lambda: (sparse_matmul(sparse, x).tanh()).sum(), [x])

    def test_sparse_matrix_degrees(self):
        dense_adj = np.array([[1.0, 0.0, 1.0], [0.0, 0.0, 0.0]])
        sparse = SparseMatrix(dense_adj)
        np.testing.assert_array_equal(sparse.row_degrees(), [2, 0])

    def test_sparse_transpose_shape(self):
        sparse = SparseMatrix(np.ones((2, 5)))
        assert sparse.T.shape == (5, 2)


class TestGradcheckUtility:
    def test_detects_wrong_gradient(self):
        a = _tensor((3,))

        def bad_fn():
            out = a * 2.0
            # Tamper with the closure by scaling the output; gradients from the
            # engine remain correct, so instead check that a genuinely wrong
            # analytic gradient is detected by comparing against a constant.
            return out.sum()

        # Manually corrupt: run backward, then assert numeric check against a
        # corrupted copy fails.
        out = bad_fn()
        out.backward()
        a.grad = a.grad * 3.0  # corrupt
        from repro.nn.gradcheck import numeric_gradient

        numeric = numeric_gradient(bad_fn, a)
        assert not np.allclose(a.grad, numeric)

    def test_passes_for_correct_gradient(self):
        a = _tensor((4,))
        assert check_gradients(lambda: (a ** 2).sum(), [a])
