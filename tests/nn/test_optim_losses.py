"""Tests for optimisers and the herb-recommendation loss functions."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Linear,
    Parameter,
    SGD,
    Tensor,
    binary_cross_entropy_with_logits,
    bpr_loss,
    herb_frequency_weights,
    l2_penalty,
    margin_multilabel_loss,
    multilabel_mse,
    weighted_multilabel_mse,
)


def _quadratic_problem():
    """Minimise ||w - target||^2; every reasonable optimiser must solve this."""
    target = np.array([1.0, -2.0, 3.0])
    w = Parameter(np.zeros(3))

    def loss_fn():
        diff = w - Tensor(target)
        return (diff * diff).sum()

    return w, target, loss_fn


class TestSGD:
    def test_converges_on_quadratic(self):
        w, target, loss_fn = _quadratic_problem()
        opt = SGD([w], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            loss = loss_fn()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-4)

    def test_momentum_accelerates(self):
        w1, target, loss_fn1 = _quadratic_problem()
        opt1 = SGD([w1], lr=0.01)
        w2 = Parameter(np.zeros(3))

        def loss_fn2():
            diff = w2 - Tensor(target)
            return (diff * diff).sum()

        opt2 = SGD([w2], lr=0.01, momentum=0.9)
        for _ in range(50):
            for opt, loss_fn in ((opt1, loss_fn1), (opt2, loss_fn2)):
                opt.zero_grad()
                loss_fn().backward()
                opt.step()
        err_plain = np.linalg.norm(w1.data - target)
        err_momentum = np.linalg.norm(w2.data - target)
        assert err_momentum < err_plain

    def test_weight_decay_shrinks_solution(self):
        w, target, loss_fn = _quadratic_problem()
        opt = SGD([w], lr=0.1, weight_decay=1.0)
        for _ in range(300):
            opt.zero_grad()
            loss_fn().backward()
            opt.step()
        assert np.all(np.abs(w.data) < np.abs(target))

    def test_invalid_hyperparameters(self):
        w = Parameter(np.zeros(2))
        with pytest.raises(ValueError):
            SGD([w], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([w], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        w, target, loss_fn = _quadratic_problem()
        opt = Adam([w], lr=0.05)
        for _ in range(500):
            opt.zero_grad()
            loss_fn().backward()
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-3)

    def test_trains_linear_regression(self):
        rng = np.random.default_rng(0)
        true_w = rng.normal(size=(4, 1))
        x = rng.normal(size=(64, 4))
        y = x @ true_w
        layer = Linear(4, 1, rng=rng)
        opt = Adam(layer.parameters(), lr=0.02)
        for _ in range(400):
            opt.zero_grad()
            pred = layer(Tensor(x))
            loss = ((pred - Tensor(y)) ** 2).mean()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(layer.weight.data, true_w, atol=0.05)

    def test_handles_missing_gradient(self):
        w = Parameter(np.ones(3))
        opt = Adam([w], lr=0.1)
        opt.step()  # no backward called; should treat grad as zero, not crash
        # weight decay is zero so parameters remain unchanged
        np.testing.assert_allclose(w.data, np.ones(3))

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.1, betas=(1.2, 0.9))


class TestFrequencyWeights:
    def test_matches_paper_equation(self):
        freq = [10, 5, 1]
        weights = herb_frequency_weights(freq)
        np.testing.assert_allclose(weights, [1.0, 2.0, 10.0])

    def test_zero_frequency_gets_largest_observed_weight(self):
        weights = herb_frequency_weights([4, 0, 2])
        np.testing.assert_allclose(weights, [1.0, 2.0, 2.0])

    def test_all_zero(self):
        np.testing.assert_allclose(herb_frequency_weights([0, 0]), [1.0, 1.0])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            herb_frequency_weights([1, -2])

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            herb_frequency_weights(np.ones((2, 2)))


class TestMultilabelLosses:
    def test_perfect_prediction_is_zero(self):
        targets = np.array([[1.0, 0.0, 1.0]])
        preds = Tensor(targets.copy(), requires_grad=True)
        loss = weighted_multilabel_mse(preds, targets, np.ones(3))
        assert loss.item() == pytest.approx(0.0)

    def test_weighting_emphasises_rare_herbs(self):
        targets = np.array([[1.0, 1.0]])
        preds = Tensor(np.array([[0.0, 0.0]]))
        weights = np.array([1.0, 10.0])
        weighted = weighted_multilabel_mse(preds, targets, weights).item()
        unweighted = multilabel_mse(preds, targets).item()
        assert weighted == pytest.approx(11.0)
        assert unweighted == pytest.approx(2.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            weighted_multilabel_mse(Tensor(np.zeros((1, 3))), np.zeros((1, 4)))
        with pytest.raises(ValueError):
            weighted_multilabel_mse(Tensor(np.zeros((1, 3))), np.zeros((1, 3)), np.ones(2))

    def test_gradient_direction(self):
        targets = np.array([[1.0, 0.0]])
        preds = Tensor(np.array([[0.0, 1.0]]), requires_grad=True)
        loss = weighted_multilabel_mse(preds, targets, np.ones(2))
        loss.backward()
        # gradient should push prediction 0 up (negative grad) and prediction 1 down
        assert preds.grad[0, 0] < 0
        assert preds.grad[0, 1] > 0


class TestBPRLoss:
    def test_positive_above_negative_gives_small_loss(self):
        pos = Tensor(np.full(8, 5.0))
        neg = Tensor(np.full(8, -5.0))
        assert bpr_loss(pos, neg).item() < 0.01

    def test_negative_above_positive_gives_large_loss(self):
        pos = Tensor(np.full(8, -5.0))
        neg = Tensor(np.full(8, 5.0))
        assert bpr_loss(pos, neg).item() > 5.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            bpr_loss(Tensor(np.zeros(3)), Tensor(np.zeros(4)))

    def test_gradient_signs(self):
        pos = Tensor(np.zeros(4), requires_grad=True)
        neg = Tensor(np.zeros(4), requires_grad=True)
        bpr_loss(pos, neg).backward()
        assert np.all(pos.grad < 0)
        assert np.all(neg.grad > 0)


class TestLogAndMarginLosses:
    def test_bce_matches_manual(self):
        logits = Tensor(np.array([[0.0, 0.0]]))
        targets = np.array([[1.0, 0.0]])
        expected = -np.log(0.5) * 2
        assert binary_cross_entropy_with_logits(logits, targets).item() == pytest.approx(expected, rel=1e-6)

    def test_bce_shape_mismatch(self):
        with pytest.raises(ValueError):
            binary_cross_entropy_with_logits(Tensor(np.zeros((1, 2))), np.zeros((2, 2)))

    def test_margin_loss_prefers_separated_scores(self):
        targets = np.array([[1.0, 0.0, 0.0]])
        good = margin_multilabel_loss(Tensor(np.array([[5.0, -5.0, -5.0]])), targets).item()
        bad = margin_multilabel_loss(Tensor(np.array([[-5.0, 5.0, 5.0]])), targets).item()
        assert good < bad

    def test_margin_loss_empty_positives(self):
        targets = np.zeros((1, 3))
        loss = margin_multilabel_loss(Tensor(np.zeros((1, 3))), targets)
        assert loss.item() == pytest.approx(0.0)

    def test_l2_penalty(self):
        params = [Parameter(np.array([1.0, 2.0])), Parameter(np.array([[2.0]]))]
        assert l2_penalty(params).item() == pytest.approx(1 + 4 + 4)

    def test_l2_penalty_empty(self):
        assert l2_penalty([]).item() == pytest.approx(0.0)


# ----------------------------------------------------------------------
# Fast-path optimisers: bitwise parity with the frozen seed implementation
# ----------------------------------------------------------------------
class TestFusedOptimizerParity:
    """The fused in-place steps must be bit-identical to the allocating seed."""

    def _paired_params(self, shapes, seed=0):
        rng = np.random.default_rng(seed)
        datas = [rng.normal(size=shape) for shape in shapes]
        fast = [Parameter(data.copy()) for data in datas]
        ref = [Parameter(data.copy()) for data in datas]
        return fast, ref, rng

    def _assign_grads(self, fast, ref, rng, skip=()):
        for index, (fp, rp) in enumerate(zip(fast, ref)):
            if index in skip:
                fp.grad = None
                rp.grad = None
                continue
            grad = rng.normal(size=fp.data.shape)
            fp.grad = grad.copy()
            rp.grad = grad.copy()

    @pytest.mark.parametrize("weight_decay", [0.0, 7e-3])
    def test_adam_bitwise_identical(self, weight_decay):
        from repro.training.reference import ReferenceAdam

        shapes = [(5, 3), (3,), (2, 2)]
        fast, ref, rng = self._paired_params(shapes)
        fast_opt = Adam(fast, lr=1e-2, weight_decay=weight_decay)
        ref_opt = ReferenceAdam(ref, lr=1e-2, weight_decay=weight_decay)
        for step in range(25):
            self._assign_grads(fast, ref, rng, skip=(step % 3,) if step % 5 == 0 else ())
            fast_opt.step()
            ref_opt.step()
            for fp, rp in zip(fast, ref):
                assert fp.data.tobytes() == rp.data.tobytes(), f"diverged at step {step}"

    @pytest.mark.parametrize("momentum", [0.0, 0.9])
    @pytest.mark.parametrize("weight_decay", [0.0, 1e-3])
    def test_sgd_bitwise_identical(self, momentum, weight_decay):
        from repro.training.reference import ReferenceSGD

        shapes = [(4, 4), (6,)]
        fast, ref, rng = self._paired_params(shapes, seed=3)
        fast_opt = SGD(fast, lr=0.05, momentum=momentum, weight_decay=weight_decay)
        ref_opt = ReferenceSGD(ref, lr=0.05, momentum=momentum, weight_decay=weight_decay)
        for step in range(25):
            self._assign_grads(fast, ref, rng)
            fast_opt.step()
            ref_opt.step()
            for fp, rp in zip(fast, ref):
                assert fp.data.tobytes() == rp.data.tobytes(), f"diverged at step {step}"

    def test_adam_step_allocates_no_new_state_after_warmup(self):
        rng = np.random.default_rng(0)
        params = [Parameter(rng.normal(size=(64, 8))), Parameter(rng.normal(size=(8,)))]
        opt = Adam(params, lr=1e-3, weight_decay=1e-4)
        for param in params:
            param.grad = rng.normal(size=param.data.shape)
        opt.step()
        state = opt.state_bytes()
        scratch = opt.scratch_bytes()
        for _ in range(10):
            for param in params:
                param.grad = rng.normal(size=param.data.shape)
            opt.step()
        assert opt.state_bytes() == state
        assert opt.scratch_bytes() == scratch


class TestOptimizerSlotKeying:
    """Regression: state must be keyed by parameter slot, not id(param).

    CPython recycles object ids, so an ``id``-keyed moment dict can hand a
    new parameter another parameter's stale moments.  Slot keying makes
    ownership positional and detectable.
    """

    def test_state_is_positional_not_id_keyed(self):
        params = [Parameter(np.ones((2, 2))), Parameter(np.zeros(3))]
        opt = Adam(params, lr=0.1)
        for param in params:
            param.grad = np.ones_like(param.data)
        opt.step()
        assert isinstance(opt._m, list) and isinstance(opt._v, list)
        assert opt._m[0].shape == (2, 2)
        assert opt._m[1].shape == (3,)

    def test_slot_state_survives_id_reuse(self):
        import gc

        params = [Parameter(np.ones(4))]
        opt = Adam(params, lr=0.1)
        params[0].grad = np.ones(4)
        opt.step()
        moments = opt._m[0].copy()
        # Free an unrelated parameter whose id may be recycled by the next
        # allocation; slot-keyed state cannot be affected by it.
        doomed = Parameter(np.zeros(4))
        del doomed
        gc.collect()
        replacement = Parameter(np.zeros(4))  # may reuse the freed id
        assert opt._m[0].tobytes() == moments.tobytes()
        del replacement

    def test_shape_change_raises_instead_of_corrupting(self):
        param = Parameter(np.ones(3))
        opt = Adam([param], lr=0.1)
        param.grad = np.ones(3)
        opt.step()
        opt.parameters[0] = Parameter(np.ones((2, 2)))
        opt.parameters[0].grad = np.ones((2, 2))
        with pytest.raises(ValueError, match="changed shape"):
            opt.step()

    def test_sgd_momentum_shape_change_raises(self):
        param = Parameter(np.ones(3))
        opt = SGD([param], lr=0.1, momentum=0.9)
        param.grad = np.ones(3)
        opt.step()
        opt.parameters[0] = Parameter(np.ones(5))
        opt.parameters[0].grad = np.ones(5)
        with pytest.raises(ValueError, match="changed shape"):
            opt.step()


class TestNoGradSkip:
    """Parameters without gradients are skipped, not fed allocated zeros."""

    def test_no_grad_no_decay_leaves_param_and_state_untouched(self):
        data = np.random.default_rng(1).normal(size=(3, 3))
        param = Parameter(data.copy())
        opt = Adam([param], lr=0.5)
        for _ in range(4):
            opt.step()
        assert param.data.tobytes() == data.tobytes()
        assert opt._m[0] is None and opt._v[0] is None
        assert opt.state_bytes() == 0
        assert opt.scratch_bytes() == 0  # never even allocated scratch

    def test_no_grad_with_decay_matches_reference_bitwise(self):
        from repro.training.reference import ReferenceAdam

        rng = np.random.default_rng(2)
        data = rng.normal(size=(4, 2))
        fast = Parameter(data.copy())
        ref = Parameter(data.copy())
        fast_opt = Adam([fast], lr=0.1, weight_decay=5e-2)
        ref_opt = ReferenceAdam([ref], lr=0.1, weight_decay=5e-2)
        for _ in range(6):
            fast_opt.step()
            ref_opt.step()
            assert fast.data.tobytes() == ref.data.tobytes()

    def test_intermittent_grads_match_reference_bitwise(self):
        from repro.training.reference import ReferenceAdam

        rng = np.random.default_rng(3)
        data = rng.normal(size=(5,))
        fast = Parameter(data.copy())
        ref = Parameter(data.copy())
        fast_opt = Adam([fast], lr=0.05)
        ref_opt = ReferenceAdam([ref], lr=0.05)
        for step in range(12):
            if step % 3 == 0:
                fast.grad = None
                ref.grad = None
            else:
                grad = rng.normal(size=5)
                fast.grad = grad.copy()
                ref.grad = grad.copy()
            fast_opt.step()
            ref_opt.step()
            assert fast.data.tobytes() == ref.data.tobytes(), f"diverged at step {step}"

    def test_sgd_no_grad_no_decay_skips(self):
        data = np.arange(6.0)
        param = Parameter(data.copy())
        opt = SGD([param], lr=0.5, momentum=0.9)
        opt.step()
        assert param.data.tobytes() == data.tobytes()
        assert opt._velocity[0] is None
