"""Tests for Module containers, layers, initialisers, dropout and the MLP."""

import numpy as np
import pytest

from repro.nn import MLP, Dropout, Embedding, Identity, Linear, Module, Parameter, Tensor, init


class TestInitialisers:
    def test_xavier_uniform_bounds(self):
        rng = np.random.default_rng(0)
        w = init.xavier_uniform((100, 50), rng=rng)
        limit = np.sqrt(6.0 / 150)
        assert np.all(np.abs(w) <= limit + 1e-12)

    def test_xavier_normal_std(self):
        rng = np.random.default_rng(0)
        w = init.xavier_normal((2000, 1000), rng=rng)
        expected_std = np.sqrt(2.0 / 3000)
        assert abs(w.std() - expected_std) < expected_std * 0.1

    def test_zeros_and_ones(self):
        assert np.all(init.zeros((3, 3)) == 0.0)
        assert np.all(init.ones((2,)) == 1.0)

    def test_uniform_range(self):
        w = init.uniform((50,), low=-0.5, high=0.5, rng=np.random.default_rng(1))
        assert np.all(w >= -0.5) and np.all(w <= 0.5)

    def test_fan_in_fan_out_requires_shape(self):
        with pytest.raises(ValueError):
            init.xavier_uniform(())


class TestModuleSystem:
    def test_parameter_registration(self):
        class Toy(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones((2, 2)))
                self.inner = Linear(2, 3, rng=np.random.default_rng(0))

        toy = Toy()
        names = dict(toy.named_parameters())
        assert "w" in names
        assert "inner.weight" in names
        assert "inner.bias" in names
        assert toy.num_parameters() == 4 + 6 + 3

    def test_train_eval_propagates(self):
        class Wrapper(Module):
            def __init__(self):
                super().__init__()
                self.drop = Dropout(0.5)

        wrapper = Wrapper()
        assert wrapper.drop.training
        wrapper.eval()
        assert not wrapper.drop.training
        wrapper.train()
        assert wrapper.drop.training

    def test_zero_grad(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((4, 3)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self):
        layer_a = Linear(4, 3, rng=np.random.default_rng(0))
        layer_b = Linear(4, 3, rng=np.random.default_rng(1))
        assert not np.allclose(layer_a.weight.data, layer_b.weight.data)
        layer_b.load_state_dict(layer_a.state_dict())
        np.testing.assert_allclose(layer_a.weight.data, layer_b.weight.data)

    def test_load_state_dict_rejects_missing_keys(self):
        layer = Linear(2, 2, rng=np.random.default_rng(0))
        with pytest.raises(KeyError):
            layer.load_state_dict({"weight": np.zeros((2, 2))})

    def test_load_state_dict_rejects_bad_shape(self):
        layer = Linear(2, 2, rng=np.random.default_rng(0))
        state = layer.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            layer.load_state_dict(state)

    def test_named_modules(self):
        mlp = MLP([4, 8, 2], rng=np.random.default_rng(0))
        names = [name for name, _ in mlp.named_modules()]
        assert "layer_0" in names and "layer_1" in names


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(5, 7, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((3, 5))))
        assert out.shape == (3, 7)

    def test_no_bias(self):
        layer = Linear(3, 2, bias=False, rng=np.random.default_rng(0))
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_activation_applied(self):
        layer = Linear(3, 4, activation="relu", rng=np.random.default_rng(0))
        out = layer(Tensor(-100.0 * np.ones((2, 3))))
        assert np.all(out.data >= 0.0)

    def test_invalid_activation(self):
        with pytest.raises(ValueError):
            Linear(2, 2, activation="swish")

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Linear(0, 2)

    def test_gradients_flow(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((5, 3)))).sum()
        out.backward()
        assert layer.weight.grad.shape == (3, 2)
        assert layer.bias.grad.shape == (2,)


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(10, 4, rng=np.random.default_rng(0))
        rows = emb([1, 3, 3])
        assert rows.shape == (3, 4)
        np.testing.assert_allclose(rows.data[1], rows.data[2])

    def test_full_table(self):
        emb = Embedding(6, 3, rng=np.random.default_rng(0))
        assert emb().shape == (6, 3)
        assert emb.all() is emb.weight

    def test_gradients_accumulate_for_repeated_indices(self):
        emb = Embedding(5, 2, rng=np.random.default_rng(0))
        out = emb([2, 2]).sum()
        out.backward()
        np.testing.assert_allclose(emb.weight.grad[2], [2.0, 2.0])

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Embedding(0, 4)


class TestDropout:
    def test_eval_mode_is_identity(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        drop.eval()
        x = Tensor(np.ones((10, 10)))
        np.testing.assert_allclose(drop(x).data, x.data)

    def test_training_mode_zeroes_and_scales(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((200, 200)))
        out = drop(x).data
        zero_fraction = np.mean(out == 0.0)
        assert 0.4 < zero_fraction < 0.6
        surviving = out[out != 0.0]
        np.testing.assert_allclose(surviving, 2.0)

    def test_zero_probability_is_identity(self):
        drop = Dropout(0.0)
        x = Tensor(np.random.default_rng(0).normal(size=(5, 5)))
        np.testing.assert_allclose(drop(x).data, x.data)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestMLP:
    def test_structure(self):
        mlp = MLP([8, 16, 4], rng=np.random.default_rng(0))
        assert len(mlp._layers) == 2
        out = mlp(Tensor(np.ones((3, 8))))
        assert out.shape == (3, 4)

    def test_single_layer_matches_paper_syndrome_mlp(self):
        mlp = MLP([6, 6], activation="relu", output_activation="relu", rng=np.random.default_rng(0))
        out = mlp(Tensor(np.ones((2, 6))))
        assert np.all(out.data >= 0.0)

    def test_requires_two_dims(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_identity_layer(self):
        layer = Identity()
        x = Tensor([1.0, 2.0])
        assert layer(x).data is x.data
