"""Tests for the gradient buffer pool and pooled backward passes."""

import numpy as np
import pytest

from repro.nn import Adam, GradientBufferPool, Linear, Parameter, Tensor


def _mlp_forward(layers, x):
    h = x
    for layer in layers:
        h = layer(h).relu() if hasattr(layer(h), "relu") else layer(h)
    return h


class TestGradientBufferPool:
    def test_acquire_miss_then_hit(self):
        pool = GradientBufferPool()
        first = pool.acquire((3, 2))
        assert first.shape == (3, 2) and first.dtype == np.float64
        assert pool.misses == 1 and pool.hits == 0
        pool.release(first)
        assert pool.num_free == 1
        second = pool.acquire((3, 2))
        assert second is first
        assert pool.hits == 1
        assert pool.num_free == 0

    def test_distinct_shapes_do_not_collide(self):
        pool = GradientBufferPool()
        a = pool.acquire((2, 2))
        pool.release(a)
        b = pool.acquire((4,))
        assert b.shape == (4,)
        assert pool.misses == 2  # the (2,2) buffer was not reused for (4,)

    def test_counters_dict(self):
        pool = GradientBufferPool()
        buf = pool.acquire((5,))
        pool.release(buf)
        pool.acquire((5,))
        counters = pool.counters()
        assert counters["acquires"] == 2
        assert counters["hits"] == 1
        assert counters["misses"] == 1
        assert counters["releases"] == 1
        assert counters["free_buffers"] == 0

    def test_pooled_bytes(self):
        pool = GradientBufferPool()
        buf = pool.acquire((10,))
        assert pool.pooled_bytes() == 0
        pool.release(buf)
        assert pool.pooled_bytes() == 10 * 8


class TestPooledBackward:
    def _problem(self, seed=0):
        rng = np.random.default_rng(seed)
        layer1 = Linear(4, 6, rng=np.random.default_rng(1))
        layer2 = Linear(6, 2, rng=np.random.default_rng(2))
        x = Tensor(rng.normal(size=(8, 4)))
        y = rng.normal(size=(8, 2))

        def loss_fn():
            pred = layer2(layer1(x).tanh())
            return ((pred - Tensor(y)) ** 2).mean()

        params = list(layer1.parameters()) + list(layer2.parameters())
        return loss_fn, params

    def test_pooled_gradients_bitwise_match_unpooled(self):
        loss_fn, params = self._problem()
        loss_fn().backward()
        plain = [p.grad.copy() for p in params]
        for p in params:
            p.grad = None

        pool = GradientBufferPool()
        loss_fn().backward(buffer_pool=pool)
        for p, expected in zip(params, plain):
            assert p.grad.tobytes() == expected.tobytes()

    def test_interior_nodes_release_buffers_leaves_keep_grads(self):
        loss_fn, params = self._problem()
        pool = GradientBufferPool()
        loss = loss_fn()
        loss.backward(buffer_pool=pool)
        for p in params:
            assert p.grad is not None
        # every interior buffer came back: acquires == releases + live leaves
        counters = pool.counters()
        assert counters["releases"] == counters["acquires"] - len(
            [p for p in params if p.grad is not None]
        )

    def test_steady_state_has_no_new_misses(self):
        loss_fn, params = self._problem()
        pool = GradientBufferPool()
        opt = Adam(params, lr=1e-3)

        def one_step():
            opt.zero_grad(buffer_pool=pool)
            loss_fn().backward(buffer_pool=pool)
            opt.step()

        one_step()
        warm_misses = pool.misses
        for _ in range(10):
            one_step()
        assert pool.misses == warm_misses
        assert pool.hits > 0

    def test_zero_grad_without_pool_still_clears(self):
        loss_fn, params = self._problem()
        opt = Adam(params, lr=1e-3)
        loss_fn().backward()
        opt.zero_grad()
        assert all(p.grad is None for p in params)

    def test_tensor_zero_grad_keep_buffer(self):
        t = Tensor(np.ones(3), requires_grad=True)
        t.grad = np.ones(3)
        buffer = t.grad
        t.zero_grad(keep_buffer=True)
        assert t.grad is buffer
        np.testing.assert_array_equal(t.grad, np.zeros(3))
        t.zero_grad()
        assert t.grad is None

    def test_backward_without_pool_unaffected_by_prior_pooled_call(self):
        loss_fn, params = self._problem()
        pool = GradientBufferPool()
        loss_fn().backward(buffer_pool=pool)
        pooled = [p.grad.copy() for p in params]
        for p in params:
            p.grad = None
        loss_fn().backward()  # no pool: must not touch the previous pool
        releases_before = pool.releases
        assert pool.releases == releases_before
        for p, expected in zip(params, pooled):
            assert p.grad.tobytes() == expected.tobytes()

    def test_reentrant_pool_state_restored_on_error(self):
        pool = GradientBufferPool()
        bad = Tensor(np.ones(2), requires_grad=False)
        with pytest.raises(RuntimeError):
            bad.backward(buffer_pool=pool)
        # a later pooled backward still works and the active-pool state is clean
        t = (Tensor(np.ones(2), requires_grad=True) * 2.0).sum()
        t.backward(buffer_pool=pool)
