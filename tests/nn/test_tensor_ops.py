"""Unit tests for the core autograd tensor operations."""

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, concat, no_grad, softmax, stack


class TestTensorBasics:
    def test_construction_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.data.dtype == np.float64
        assert not t.requires_grad

    def test_construction_from_tensor_shares_values(self):
        base = Tensor([1.0, 2.0])
        wrapped = Tensor(base)
        np.testing.assert_array_equal(wrapped.data, base.data)

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_wraps_scalar(self):
        t = as_tensor(3.5)
        assert t.item() == pytest.approx(3.5)

    def test_detach_breaks_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2.0).detach()
        assert not b.requires_grad
        assert b.parents == ()

    def test_len_and_size(self):
        t = Tensor(np.zeros((3, 4)))
        assert len(t) == 3
        assert t.size == 12

    def test_backward_requires_grad_error(self):
        t = Tensor([1.0])
        with pytest.raises(RuntimeError):
            t.backward()

    def test_backward_non_scalar_requires_explicit_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        out = t * 2.0
        with pytest.raises(RuntimeError):
            out.backward()

    def test_no_grad_disables_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with no_grad():
            out = a * 3.0
        assert not out.requires_grad
        assert out.parents == ()

    def test_no_grad_is_thread_local(self):
        """Inference threads toggling no_grad must not disable a trainer's tape.

        With a process-global flag, two threads racing enter/exit can leave
        grad mode off for everyone (one thread saves previous=False and
        restores it last) — after which backward() breaks process-wide.
        """
        import threading

        from repro.nn import is_grad_enabled

        stop = threading.Event()

        def toggler():
            while not stop.is_set():
                with no_grad():
                    pass

        threads = [threading.Thread(target=toggler) for _ in range(2)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(200):
                assert is_grad_enabled()
                a = Tensor([1.0, 2.0], requires_grad=True)
                (a * 3.0).sum().backward()
                np.testing.assert_allclose(a.grad, [3.0, 3.0])
        finally:
            stop.set()
            for thread in threads:
                thread.join(10)
        assert is_grad_enabled()


class TestArithmetic:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_add_broadcasting_backward(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((3,)), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))
        np.testing.assert_allclose(b.grad, [2.0, 2.0, 2.0])

    def test_sub_backward(self):
        a = Tensor([5.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        (a - b).backward()
        np.testing.assert_allclose(a.grad, [1.0])
        np.testing.assert_allclose(b.grad, [-1.0])

    def test_mul_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([4.0, 5.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0, 5.0])
        np.testing.assert_allclose(b.grad, [2.0, 3.0])

    def test_div_backward(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        (a / b).backward()
        np.testing.assert_allclose(a.grad, [1.0 / 3.0])
        np.testing.assert_allclose(b.grad, [-6.0 / 9.0])

    def test_radd_rmul_with_scalars(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = (3.0 + a) * 2.0
        out.sum().backward()
        np.testing.assert_allclose(out.data, [8.0, 10.0])
        np.testing.assert_allclose(a.grad, [2.0, 2.0])

    def test_rsub_rtruediv(self):
        a = Tensor([2.0], requires_grad=True)
        out = 10.0 - a
        out.backward()
        np.testing.assert_allclose(out.data, [8.0])
        np.testing.assert_allclose(a.grad, [-1.0])
        a.zero_grad()
        out = 10.0 / a
        out.backward()
        np.testing.assert_allclose(out.data, [5.0])
        np.testing.assert_allclose(a.grad, [-10.0 / 4.0])

    def test_neg(self):
        a = Tensor([1.0, -2.0], requires_grad=True)
        (-a).sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0, -1.0])

    def test_pow_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        (a ** 3).sum().backward()
        np.testing.assert_allclose(a.grad, [12.0, 27.0])

    def test_pow_rejects_tensor_exponent(self):
        a = Tensor([2.0])
        with pytest.raises(TypeError):
            a ** Tensor([2.0])

    def test_grad_accumulates_when_reused(self):
        a = Tensor([2.0], requires_grad=True)
        out = a * a + a
        out.backward()
        np.testing.assert_allclose(a.grad, [5.0])


class TestMatmulAndShapes:
    def test_matmul_values_and_grads(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        b = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        out = a @ b
        assert out.shape == (2, 4)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 4)) @ b.data.T)
        np.testing.assert_allclose(b.grad, a.data.T @ np.ones((2, 4)))

    def test_transpose(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = a.T
        assert out.shape == (3, 2)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_reshape_roundtrip(self):
        a = Tensor(np.arange(6.0), requires_grad=True)
        out = a.reshape(2, 3).reshape(6)
        np.testing.assert_allclose(out.data, a.data)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(6))

    def test_gather_rows_forward(self):
        table = Tensor(np.arange(12.0).reshape(4, 3))
        rows = table.gather_rows([2, 0, 2])
        np.testing.assert_allclose(rows.data, table.data[[2, 0, 2]])

    def test_gather_rows_backward_accumulates_duplicates(self):
        table = Tensor(np.zeros((4, 2)), requires_grad=True)
        rows = table.gather_rows([1, 1, 3])
        rows.sum().backward()
        expected = np.zeros((4, 2))
        expected[1] = 2.0
        expected[3] = 1.0
        np.testing.assert_allclose(table.grad, expected)

    def test_getitem_row(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        row = a[1]
        np.testing.assert_allclose(row.data, [3.0, 4.0, 5.0])
        row.sum().backward()
        expected = np.zeros((2, 3))
        expected[1] = 1.0
        np.testing.assert_allclose(a.grad, expected)


class TestReductions:
    def test_sum_all(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        out = a.sum()
        assert out.item() == pytest.approx(6.0)
        out.backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_sum_axis(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = a.sum(axis=1)
        np.testing.assert_allclose(out.data, [3.0, 12.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_sum_keepdims(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)

    def test_mean_axis(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = a.mean(axis=0)
        np.testing.assert_allclose(out.data, [1.5, 2.5, 3.5])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 0.5))

    def test_mean_all(self):
        a = Tensor(np.arange(4.0), requires_grad=True)
        out = a.mean()
        assert out.item() == pytest.approx(1.5)
        out.backward()
        np.testing.assert_allclose(a.grad, np.full(4, 0.25))


class TestActivations:
    def test_tanh(self):
        a = Tensor([0.0, 1.0], requires_grad=True)
        out = a.tanh()
        np.testing.assert_allclose(out.data, np.tanh([0.0, 1.0]))
        out.sum().backward()
        np.testing.assert_allclose(a.grad, 1.0 - np.tanh([0.0, 1.0]) ** 2)

    def test_relu(self):
        a = Tensor([-1.0, 2.0], requires_grad=True)
        out = a.relu()
        np.testing.assert_allclose(out.data, [0.0, 2.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])

    def test_sigmoid_range(self):
        a = Tensor(np.linspace(-5, 5, 11))
        out = a.sigmoid()
        assert np.all(out.data > 0) and np.all(out.data < 1)

    def test_exp_log_inverse(self):
        a = Tensor([0.5, 1.5], requires_grad=True)
        out = a.exp().log()
        np.testing.assert_allclose(out.data, a.data)

    def test_sqrt(self):
        a = Tensor([4.0, 9.0], requires_grad=True)
        out = a.sqrt()
        np.testing.assert_allclose(out.data, [2.0, 3.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [0.25, 1.0 / 6.0])

    def test_clip_blocks_gradient_outside_range(self):
        a = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        out = a.clip(-1.0, 1.0)
        np.testing.assert_allclose(out.data, [-1.0, 0.5, 1.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])


class TestFunctionalOps:
    def test_concat_forward_backward(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.full((2, 3), 2.0), requires_grad=True)
        out = concat([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 2.0))
        np.testing.assert_allclose(b.grad, np.full((2, 3), 2.0))

    def test_concat_axis0(self):
        a = Tensor(np.ones((1, 3)), requires_grad=True)
        b = Tensor(np.zeros((2, 3)), requires_grad=True)
        out = concat([a, b], axis=0)
        assert out.shape == (3, 3)

    def test_stack(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 2)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 7)))
        probs = softmax(x, axis=1)
        np.testing.assert_allclose(probs.data.sum(axis=1), np.ones(4), atol=1e-12)

    def test_softmax_is_shift_invariant(self):
        x = np.array([[1.0, 2.0, 3.0]])
        p1 = softmax(Tensor(x)).data
        p2 = softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(p1, p2, atol=1e-12)
