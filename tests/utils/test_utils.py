"""Tests for the shared utilities (seeding and timing)."""

import time

import numpy as np
import pytest

from repro.utils import SeedSequenceFactory, Timer, new_rng, seed_everything


class TestSeeding:
    def test_new_rng_deterministic(self):
        a = new_rng(42).random(5)
        b = new_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_new_rng_different_seeds(self):
        assert not np.array_equal(new_rng(1).random(5), new_rng(2).random(5))

    def test_seed_everything_returns_generator(self):
        rng = seed_everything(7)
        assert isinstance(rng, np.random.Generator)
        # legacy global generator is also seeded
        first = np.random.random()
        seed_everything(7)
        assert np.random.random() == pytest.approx(first)

    def test_seed_sequence_factory_streams_are_independent(self):
        factory = SeedSequenceFactory(3)
        a = factory.spawn().random(4)
        b = factory.spawn().random(4)
        assert not np.array_equal(a, b)

    def test_seed_sequence_factory_not_reproducible_within_instance_but_by_seed(self):
        first = SeedSequenceFactory(3).spawn().random(4)
        second = SeedSequenceFactory(3).spawn().random(4)
        np.testing.assert_array_equal(first, second)


class TestTimer:
    def test_context_manager_measures_time(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.005

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_manual_start_stop(self):
        timer = Timer().start()
        elapsed = timer.stop()
        assert elapsed >= 0.0
        assert timer.elapsed == elapsed
