"""Tests for the PAPER_OPTIMAL_PARAMETERS → TrainerConfig mapping helper."""

import pytest

from repro.training import PAPER_OPTIMAL_PARAMETERS, TrainerConfig, paper_trainer_config


class TestPaperTrainerConfig:
    @pytest.mark.parametrize("name", ["GC-MC", "PinSage", "NGCF", "HeteGCN", "SMGCN"])
    def test_maps_lr_and_lambda(self, name):
        config = paper_trainer_config(name)
        assert isinstance(config, TrainerConfig)
        assert config.learning_rate == PAPER_OPTIMAL_PARAMETERS[name]["lr"]
        assert config.weight_decay == PAPER_OPTIMAL_PARAMETERS[name]["lambda"]

    def test_overrides_win(self):
        config = paper_trainer_config("SMGCN", epochs=3, learning_rate=1e-2)
        assert config.epochs == 3
        assert config.learning_rate == 1e-2
        assert config.weight_decay == PAPER_OPTIMAL_PARAMETERS["SMGCN"]["lambda"]

    def test_unknown_model(self):
        with pytest.raises(KeyError, match="known models"):
            paper_trainer_config("DeepHerb")

    def test_model_without_trainer_settings(self):
        with pytest.raises(KeyError, match="no trainer settings"):
            paper_trainer_config("HC-KGETM")
