"""Tests for the training profiler and history serialization."""

import json
import time

import numpy as np
import pytest

from repro.training import EpochProfile, TrainProfiler, Trainer, TrainerConfig, TrainingHistory
from repro.training.profiler import PHASES


class TestTrainProfiler:
    def test_phases_accumulate(self):
        profiler = TrainProfiler()
        profiler.start_epoch(0)
        with profiler.phase("forward"):
            time.sleep(0.002)
        with profiler.phase("forward"):
            time.sleep(0.002)
        with profiler.phase("step"):
            pass
        profile = profiler.end_epoch(num_batches=2, pool_counters={"hits": 5, "misses": 1})
        assert profile.epoch == 0
        assert profile.num_batches == 2
        assert profile.phase_seconds["forward"] >= 0.004
        assert "step" in profile.phase_seconds
        assert profile.pool_counters == {"hits": 5, "misses": 1}
        # 'other' absorbs untimed loop overhead so phases sum to the total
        total_phases = sum(profile.phase_seconds.values())
        assert total_phases == pytest.approx(profile.total_seconds, abs=1e-6)

    def test_disabled_profiler_is_noop(self):
        profiler = TrainProfiler(enabled=False)
        profiler.start_epoch(0)
        with profiler.phase("forward"):
            pass
        assert profiler.end_epoch(num_batches=1) is None
        assert profiler.profiles == []

    def test_nested_epochs_collect(self):
        profiler = TrainProfiler()
        for epoch in range(3):
            profiler.start_epoch(epoch)
            with profiler.phase("backward"):
                pass
            profiler.end_epoch(num_batches=1)
        assert [p.epoch for p in profiler.profiles] == [0, 1, 2]

    def test_phase_outside_epoch_is_noop(self):
        profiler = TrainProfiler()
        with profiler.phase("forward"):
            pass  # no start_epoch: must not raise or record
        assert profiler.profiles == []


class TestEpochProfile:
    def _profile(self):
        return EpochProfile(
            epoch=2,
            total_seconds=0.5,
            phase_seconds={"forward": 0.3, "backward": 0.1, "other": 0.1},
            num_batches=10,
            pool_counters={"acquires": 100, "hits": 90, "misses": 10, "releases": 80},
        )

    def test_roundtrip_through_json(self):
        profile = self._profile()
        restored = EpochProfile.from_dict(json.loads(json.dumps(profile.to_dict())))
        assert restored == profile

    def test_batches_per_second(self):
        assert self._profile().batches_per_second == pytest.approx(20.0)
        empty = EpochProfile(epoch=0, total_seconds=0.0)
        assert empty.batches_per_second == 0.0

    def test_phase_fraction(self):
        profile = self._profile()
        assert profile.phase_fraction("forward") == pytest.approx(0.6)
        assert profile.phase_fraction("eval") == 0.0

    def test_summary_line_mentions_phases_and_pool(self):
        line = self._profile().summary_line()
        assert "epoch 3" in line
        assert "forward=" in line
        assert "pool_hits=90" in line

    def test_phase_ordering_constant(self):
        assert PHASES == ("sampling", "forward", "backward", "step", "eval", "other")


class TestTrainingHistorySerialization:
    def test_roundtrip_with_profiles(self):
        history = TrainingHistory(
            epoch_losses=[2.0, 1.5],
            validation_metrics=[{"p@5": 0.25}],
            epoch_profiles=[
                EpochProfile(epoch=0, total_seconds=0.1, phase_seconds={"forward": 0.1})
            ],
        )
        restored = TrainingHistory.from_dict(json.loads(json.dumps(history.to_dict())))
        assert restored == history

    def test_total_training_seconds(self):
        history = TrainingHistory(
            epoch_profiles=[
                EpochProfile(epoch=0, total_seconds=0.2),
                EpochProfile(epoch=1, total_seconds=0.3),
            ]
        )
        assert history.total_training_seconds() == pytest.approx(0.5)
        assert TrainingHistory().total_training_seconds() == 0.0

    def test_trainer_records_profiles_only_when_asked(self, tiny_split):
        from repro.models import SMGCN, SMGCNConfig

        train, _ = tiny_split
        model = SMGCN.from_dataset(
            train,
            SMGCNConfig(embedding_dim=8, layer_dims=(12,), symptom_threshold=2, herb_threshold=4, seed=0),
        )
        config = TrainerConfig(epochs=2, batch_size=64, learning_rate=1e-3, profile=True)
        history = Trainer(config).fit(model, train)
        assert len(history.epoch_profiles) == 2
        for profile in history.epoch_profiles:
            assert profile.total_seconds > 0
            assert profile.num_batches > 0
            assert set(profile.pool_counters) >= {"acquires", "hits", "misses", "releases"}
        # phases cover the loop: forward/backward/step all appear
        phases = set(history.epoch_profiles[0].phase_seconds)
        assert {"forward", "backward", "step"} <= phases

        plain = TrainingHistory()
        model2 = SMGCN.from_dataset(
            train,
            SMGCNConfig(embedding_dim=8, layer_dims=(12,), symptom_threshold=2, herb_threshold=4, seed=0),
        )
        plain = Trainer(TrainerConfig(epochs=1, batch_size=64, learning_rate=1e-3)).fit(model2, train)
        assert plain.epoch_profiles == []
