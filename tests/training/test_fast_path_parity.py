"""Bit-identity harness: the fast trainer must reproduce the frozen seed.

Every registered neural model is trained twice from identical seeds — once
with the production :class:`Trainer` (fused optimisers, pooled gradient
buffers, pair-sliced BPR) and once with :class:`ReferenceTrainer` (the seed
implementation kept verbatim in ``repro.training.reference``) — and the
per-epoch losses plus the final ``state_dict`` are compared **byte for
byte**.  Scoring recipes are compared like-for-like: the pair-sliced BPR
contraction is not bitwise-equal to slicing the full BLAS product (different
summation order), so ``bpr_scoring`` selects the same recipe on both sides.

A second group certifies the allocation-free steady state: after the warm-up
epoch the gradient pool records no new misses, and steady-state steps do not
grow traced memory.
"""

import gc
import tracemalloc

import numpy as np
import pytest

import repro.models  # noqa: F401 - populate the registry
from repro.data.synthetic import SyntheticTCMConfig, generate_corpus
from repro.experiments.datasets import get_profile
from repro.models.registry import MODEL_REGISTRY
from repro.training import ReferenceTrainer, Trainer, TrainerConfig

NEURAL_MODELS = MODEL_REGISTRY.neural_names()
DENSE_LOSSES = ("multilabel", "multilabel_unweighted", "logloss")


@pytest.fixture(scope="module")
def corpus():
    config = SyntheticTCMConfig(
        num_symptoms=24, num_herbs=36, num_prescriptions=70, seed=13
    )
    return generate_corpus(config).dataset


def _train(trainer_cls, name, loss, bpr_scoring, dataset):
    entry = MODEL_REGISTRY.get(name)
    model = entry.build(dataset, entry.default_config(get_profile("smoke"), seed=1))
    config = TrainerConfig(
        epochs=2,
        batch_size=32,
        loss=loss,
        seed=9,
        learning_rate=2e-3,
        weight_decay=1e-4,
        negative_samples=2,
        bpr_scoring=bpr_scoring,
    )
    history = trainer_cls(config).fit(model, dataset)
    state = {key: value.copy() for key, value in model.state_dict().items()}
    return history.epoch_losses, state


def _assert_bitwise(fast, reference):
    fast_losses, fast_state = fast
    ref_losses, ref_state = reference
    assert fast_losses == ref_losses
    assert fast_state.keys() == ref_state.keys()
    for key in fast_state:
        assert fast_state[key].tobytes() == ref_state[key].tobytes(), key


class TestFastTrainerBitIdentity:
    @pytest.mark.parametrize("loss", DENSE_LOSSES)
    @pytest.mark.parametrize("name", NEURAL_MODELS)
    def test_dense_losses(self, name, loss, corpus):
        fast = _train(Trainer, name, loss, "pair", corpus)
        reference = _train(ReferenceTrainer, name, loss, "pair", corpus)
        _assert_bitwise(fast, reference)

    @pytest.mark.parametrize("bpr_scoring", ["pair", "full"])
    @pytest.mark.parametrize("name", NEURAL_MODELS)
    def test_bpr_both_scoring_recipes(self, name, bpr_scoring, corpus):
        fast = _train(Trainer, name, "bpr", bpr_scoring, corpus)
        reference = _train(ReferenceTrainer, name, "bpr", bpr_scoring, corpus)
        _assert_bitwise(fast, reference)

    def test_full_escape_hatch_is_seed_recipe(self, corpus):
        """``bpr_scoring="full"`` in the reference IS the untouched seed path."""
        losses_pair, _ = _train(Trainer, "SMGCN", "bpr", "pair", corpus)
        losses_full, _ = _train(Trainer, "SMGCN", "bpr", "full", corpus)
        # same sampler stream, same objective: recipes agree numerically
        np.testing.assert_allclose(losses_pair, losses_full, rtol=1e-9)

    def test_pair_and_full_sample_identical_pairs(self, corpus):
        """Switching the scoring recipe must not perturb the random stream."""
        from repro.data.loaders import batch_iterator

        entry = MODEL_REGISTRY.get("SMGCN")
        model = entry.build(corpus, entry.default_config(get_profile("smoke"), seed=1))
        batch = next(iter(batch_iterator(corpus, batch_size=32, shuffle=False)))
        trainer = Trainer(TrainerConfig(loss="bpr", negative_samples=3))
        herb_arrays = [np.asarray(h, dtype=np.int64) for h in batch.herb_sets]
        valid_rows = np.array(
            [r for r, h in enumerate(herb_arrays) if h.size], dtype=np.int64
        )
        draws = []
        for _ in range(2):
            rng = np.random.default_rng(21)
            draws.append(
                trainer._sample_bpr_pairs(herb_arrays, valid_rows, model.num_herbs, 3, rng)
            )
        np.testing.assert_array_equal(draws[0][0], draws[1][0])
        np.testing.assert_array_equal(draws[0][1], draws[1][1])


class TestAllocationFreeSteadyState:
    def test_pool_misses_stop_after_warmup_epoch(self, corpus):
        entry = MODEL_REGISTRY.get("SMGCN")
        model = entry.build(corpus, entry.default_config(get_profile("smoke"), seed=1))
        config = TrainerConfig(
            epochs=5, batch_size=32, loss="multilabel", seed=3, profile=True
        )
        history = Trainer(config).fit(model, corpus)
        misses = [p.pool_counters["misses"] for p in history.epoch_profiles]
        # every distinct gradient shape is seen within the first epoch (batch
        # partition sizes repeat across epochs); afterwards the pool serves
        # every acquire from recycled buffers
        assert misses[1:] == [misses[0]] * (len(misses) - 1)
        hits = history.epoch_profiles[-1].pool_counters["hits"]
        assert hits > 0

    def test_steady_state_steps_do_not_grow_traced_memory(self, corpus):
        from repro.nn import Adam, GradientBufferPool, herb_frequency_weights
        from repro.data.loaders import batch_iterator

        entry = MODEL_REGISTRY.get("SMGCN")
        model = entry.build(corpus, entry.default_config(get_profile("smoke"), seed=1))
        model.train()
        trainer = Trainer(TrainerConfig(loss="multilabel", batch_size=32))
        optimizer = Adam(model.parameters(), lr=1e-3, weight_decay=1e-4)
        weights = herb_frequency_weights(corpus.herb_frequencies())
        pool = GradientBufferPool()
        batch = next(iter(batch_iterator(corpus, batch_size=32, shuffle=False)))
        rng = np.random.default_rng(0)

        def one_step():
            optimizer.zero_grad(buffer_pool=pool)
            loss = trainer._batch_loss(model, batch, weights, rng)
            loss.backward(buffer_pool=pool)
            optimizer.step()

        for _ in range(3):  # warm up pool, optimizer state and scratch
            one_step()
        gc.collect()
        tracemalloc.start()
        baseline, _ = tracemalloc.get_traced_memory()
        for _ in range(20):
            one_step()
        gc.collect()
        current, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # transient forward temporaries are freed each step; persistent growth
        # would accumulate ~20x a step's worth — a tight bound catches that
        assert current - baseline < 256 * 1024, (
            f"steady-state training grew traced memory by {current - baseline} bytes"
        )
