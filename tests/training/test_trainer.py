"""Tests for the trainer, its configuration and the loss options."""

import numpy as np
import pytest

from repro.evaluation import Evaluator
from repro.models import SMGCN, SMGCNConfig
from repro.training import PAPER_OPTIMAL_PARAMETERS, Trainer, TrainerConfig


def _model(train, **overrides):
    defaults = dict(embedding_dim=8, layer_dims=(12,), symptom_threshold=2, herb_threshold=4, seed=0)
    defaults.update(overrides)
    return SMGCN.from_dataset(train, SMGCNConfig(**defaults))


class TestTrainerConfig:
    def test_defaults_valid(self):
        config = TrainerConfig()
        assert config.loss == "multilabel"

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainerConfig(learning_rate=0)
        with pytest.raises(ValueError):
            TrainerConfig(weight_decay=-1)
        with pytest.raises(ValueError):
            TrainerConfig(batch_size=0)
        with pytest.raises(ValueError):
            TrainerConfig(loss="hinge")
        with pytest.raises(ValueError):
            TrainerConfig(negative_samples=0)
        with pytest.raises(ValueError):
            TrainerConfig(eval_every=0)

    def test_paper_parameters_table(self):
        assert set(PAPER_OPTIMAL_PARAMETERS) == {
            "HC-KGETM",
            "GC-MC",
            "PinSage",
            "NGCF",
            "HeteGCN",
            "SMGCN",
        }
        assert PAPER_OPTIMAL_PARAMETERS["SMGCN"]["lambda"] == pytest.approx(7e-3)
        assert PAPER_OPTIMAL_PARAMETERS["SMGCN"]["xs"] == 5
        assert PAPER_OPTIMAL_PARAMETERS["SMGCN"]["xh"] == 40


class TestTrainerMultilabel:
    def test_loss_decreases(self, tiny_split):
        train, _ = tiny_split
        model = _model(train)
        config = TrainerConfig(epochs=8, batch_size=64, learning_rate=3e-3, weight_decay=1e-5, seed=0)
        history = Trainer(config).fit(model, train)
        assert history.num_epochs == 8
        assert history.final_loss < history.epoch_losses[0]
        assert history.improved()

    def test_model_in_eval_mode_after_fit(self, tiny_split):
        train, _ = tiny_split
        model = _model(train)
        Trainer(TrainerConfig(epochs=1, batch_size=64, learning_rate=1e-3)).fit(model, train)
        assert not model.training

    def test_training_improves_over_untrained(self, tiny_split):
        train, test = tiny_split
        evaluator = Evaluator(test, ks=(5,))
        untrained = _model(train, seed=5)
        before = evaluator.evaluate(untrained).metric("p@5")
        trained = _model(train, seed=5)
        Trainer(
            TrainerConfig(epochs=25, batch_size=64, learning_rate=5e-3, weight_decay=1e-5, seed=0)
        ).fit(trained, train)
        after = evaluator.evaluate(trained).metric("p@5")
        assert after > before

    def test_unweighted_variant_runs(self, tiny_split):
        train, _ = tiny_split
        model = _model(train)
        config = TrainerConfig(epochs=2, batch_size=64, loss="multilabel_unweighted", learning_rate=1e-3)
        history = Trainer(config).fit(model, train)
        assert history.num_epochs == 2

    def test_logloss_variant_runs(self, tiny_split):
        train, _ = tiny_split
        model = _model(train)
        config = TrainerConfig(epochs=2, batch_size=64, loss="logloss", learning_rate=1e-3)
        history = Trainer(config).fit(model, train)
        assert all(np.isfinite(history.epoch_losses))

    def test_deterministic_given_seed(self, tiny_split):
        train, _ = tiny_split
        losses = []
        for _ in range(2):
            model = _model(train, seed=2)
            history = Trainer(
                TrainerConfig(epochs=3, batch_size=64, learning_rate=1e-3, seed=7)
            ).fit(model, train)
            losses.append(history.epoch_losses)
        np.testing.assert_allclose(losses[0], losses[1])

    def test_validation_evaluation_recorded(self, tiny_split):
        train, test = tiny_split
        model = _model(train)
        evaluator = Evaluator(test, ks=(5,))
        config = TrainerConfig(epochs=4, batch_size=64, learning_rate=1e-3, eval_every=2)
        history = Trainer(config).fit(model, train, validation_evaluator=evaluator)
        assert len(history.validation_metrics) == 2
        assert "p@5" in history.validation_metrics[0]

    def test_zero_epochs(self, tiny_split):
        train, _ = tiny_split
        model = _model(train)
        history = Trainer(TrainerConfig(epochs=0)).fit(model, train)
        assert history.num_epochs == 0
        with pytest.raises(ValueError):
            history.final_loss


class TestTrainerBPR:
    def test_bpr_loss_decreases(self, tiny_split):
        train, _ = tiny_split
        model = _model(train)
        config = TrainerConfig(epochs=6, batch_size=64, loss="bpr", learning_rate=3e-3, seed=0)
        history = Trainer(config).fit(model, train)
        assert history.final_loss < history.epoch_losses[0]

    def test_bpr_loss_positive(self, tiny_split):
        train, _ = tiny_split
        model = _model(train)
        config = TrainerConfig(epochs=1, batch_size=64, loss="bpr", learning_rate=1e-3, seed=0)
        history = Trainer(config).fit(model, train)
        assert history.epoch_losses[0] > 0

    def test_bpr_multiple_negative_samples(self, tiny_split):
        train, _ = tiny_split
        model = _model(train)
        config = TrainerConfig(
            epochs=1, batch_size=64, loss="bpr", negative_samples=3, learning_rate=1e-3, seed=0
        )
        history = Trainer(config).fit(model, train)
        assert np.isfinite(history.final_loss)
