"""Tests for the trainer, its configuration and the loss options."""

import numpy as np
import pytest

from repro.data.loaders import Batch
from repro.evaluation import Evaluator
from repro.models import SMGCN, SMGCNConfig
from repro.models.base import GraphHerbRecommender
from repro.nn import Tensor
from repro.training import PAPER_OPTIMAL_PARAMETERS, Trainer, TrainerConfig


def _model(train, **overrides):
    defaults = dict(embedding_dim=8, layer_dims=(12,), symptom_threshold=2, herb_threshold=4, seed=0)
    defaults.update(overrides)
    return SMGCN.from_dataset(train, SMGCNConfig(**defaults))


class TestTrainerConfig:
    def test_defaults_valid(self):
        config = TrainerConfig()
        assert config.loss == "multilabel"

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainerConfig(learning_rate=0)
        with pytest.raises(ValueError):
            TrainerConfig(weight_decay=-1)
        with pytest.raises(ValueError):
            TrainerConfig(batch_size=0)
        with pytest.raises(ValueError):
            TrainerConfig(loss="hinge")
        with pytest.raises(ValueError):
            TrainerConfig(negative_samples=0)
        with pytest.raises(ValueError):
            TrainerConfig(eval_every=0)

    def test_paper_parameters_table(self):
        assert set(PAPER_OPTIMAL_PARAMETERS) == {
            "HC-KGETM",
            "GC-MC",
            "PinSage",
            "NGCF",
            "HeteGCN",
            "SMGCN",
        }
        assert PAPER_OPTIMAL_PARAMETERS["SMGCN"]["lambda"] == pytest.approx(7e-3)
        assert PAPER_OPTIMAL_PARAMETERS["SMGCN"]["xs"] == 5
        assert PAPER_OPTIMAL_PARAMETERS["SMGCN"]["xh"] == 40


class TestTrainerMultilabel:
    def test_loss_decreases(self, tiny_split):
        train, _ = tiny_split
        model = _model(train)
        config = TrainerConfig(epochs=8, batch_size=64, learning_rate=3e-3, weight_decay=1e-5, seed=0)
        history = Trainer(config).fit(model, train)
        assert history.num_epochs == 8
        assert history.final_loss < history.epoch_losses[0]
        assert history.improved()

    def test_model_in_eval_mode_after_fit(self, tiny_split):
        train, _ = tiny_split
        model = _model(train)
        Trainer(TrainerConfig(epochs=1, batch_size=64, learning_rate=1e-3)).fit(model, train)
        assert not model.training

    def test_training_improves_over_untrained(self, tiny_split):
        train, test = tiny_split
        evaluator = Evaluator(test, ks=(5,))
        untrained = _model(train, seed=5)
        before = evaluator.evaluate(untrained).metric("p@5")
        trained = _model(train, seed=5)
        Trainer(
            TrainerConfig(epochs=25, batch_size=64, learning_rate=5e-3, weight_decay=1e-5, seed=0)
        ).fit(trained, train)
        after = evaluator.evaluate(trained).metric("p@5")
        assert after > before

    def test_unweighted_variant_runs(self, tiny_split):
        train, _ = tiny_split
        model = _model(train)
        config = TrainerConfig(epochs=2, batch_size=64, loss="multilabel_unweighted", learning_rate=1e-3)
        history = Trainer(config).fit(model, train)
        assert history.num_epochs == 2

    def test_logloss_variant_runs(self, tiny_split):
        train, _ = tiny_split
        model = _model(train)
        config = TrainerConfig(epochs=2, batch_size=64, loss="logloss", learning_rate=1e-3)
        history = Trainer(config).fit(model, train)
        assert all(np.isfinite(history.epoch_losses))

    def test_deterministic_given_seed(self, tiny_split):
        train, _ = tiny_split
        losses = []
        for _ in range(2):
            model = _model(train, seed=2)
            history = Trainer(
                TrainerConfig(epochs=3, batch_size=64, learning_rate=1e-3, seed=7)
            ).fit(model, train)
            losses.append(history.epoch_losses)
        np.testing.assert_allclose(losses[0], losses[1])

    def test_validation_evaluation_recorded(self, tiny_split):
        train, test = tiny_split
        model = _model(train)
        evaluator = Evaluator(test, ks=(5,))
        config = TrainerConfig(epochs=4, batch_size=64, learning_rate=1e-3, eval_every=2)
        history = Trainer(config).fit(model, train, validation_evaluator=evaluator)
        assert len(history.validation_metrics) == 2
        assert "p@5" in history.validation_metrics[0]

    def test_zero_epochs(self, tiny_split):
        train, _ = tiny_split
        model = _model(train)
        history = Trainer(TrainerConfig(epochs=0)).fit(model, train)
        assert history.num_epochs == 0
        with pytest.raises(ValueError):
            history.final_loss


class TestTrainerBPR:
    def test_bpr_loss_decreases(self, tiny_split):
        train, _ = tiny_split
        model = _model(train)
        config = TrainerConfig(epochs=6, batch_size=64, loss="bpr", learning_rate=3e-3, seed=0)
        history = Trainer(config).fit(model, train)
        assert history.final_loss < history.epoch_losses[0]

    def test_bpr_loss_positive(self, tiny_split):
        train, _ = tiny_split
        model = _model(train)
        config = TrainerConfig(epochs=1, batch_size=64, loss="bpr", learning_rate=1e-3, seed=0)
        history = Trainer(config).fit(model, train)
        assert history.epoch_losses[0] > 0

    def test_bpr_multiple_negative_samples(self, tiny_split):
        train, _ = tiny_split
        model = _model(train)
        config = TrainerConfig(
            epochs=1, batch_size=64, loss="bpr", negative_samples=3, learning_rate=1e-3, seed=0
        )
        history = Trainer(config).fit(model, train)
        assert np.isfinite(history.final_loss)


class _IdentityScoreModel(GraphHerbRecommender):
    """Stub whose score at (row, herb) encodes the flat index.

    ``scores[row, herb] = row * num_herbs + herb`` lets tests decode which
    (positive, negative) herb ids the BPR sampler gathered from the values the
    loss receives.  ``encode``/``induce_syndrome`` realise the same scheme for
    the pair-sliced path: syndrome row ``i`` is ``[i, 1]`` and herb ``h`` is
    ``[num_herbs, h]``, so their inner product is ``i * num_herbs + h``.
    (The sampler edge-case batches keep every *valid* row, so the local row
    index the pair path scores equals the batch row index the tests decode.)
    """

    def encode(self):
        symptom_embeddings = Tensor(np.zeros((self.num_symptoms, 2)))
        herb_embeddings = Tensor(
            np.column_stack(
                [
                    np.full(self.num_herbs, float(self.num_herbs)),
                    np.arange(self.num_herbs, dtype=np.float64),
                ]
            )
        )
        return symptom_embeddings, herb_embeddings

    def induce_syndrome(self, symptom_embeddings, symptom_sets):
        n = len(symptom_sets)
        return Tensor(np.column_stack([np.arange(n, dtype=np.float64), np.ones(n)]))

    def forward(self, symptom_sets):
        n = len(symptom_sets)
        data = np.arange(n * self.num_herbs, dtype=np.float64).reshape(n, self.num_herbs)
        return Tensor(data)


def _bpr_batch(herb_sets, num_herbs):
    targets = np.zeros((len(herb_sets), num_herbs), dtype=np.float64)
    for row, herbs in enumerate(herb_sets):
        if herbs:
            targets[row, list(herbs)] = 1.0
    return Batch(
        indices=np.arange(len(herb_sets)),
        symptom_sets=[(0,)] * len(herb_sets),
        herb_targets=targets,
        herb_sets=[tuple(h) for h in herb_sets],
    )


class TestBPRSamplerEdgeCases:
    """The seed sampler crashed on empty herb sets and hung on full coverage."""

    def _loss(self, herb_sets, num_herbs=10, negative_samples=2, seed=0):
        model = _IdentityScoreModel(num_symptoms=4, num_herbs=num_herbs)
        trainer = Trainer(
            TrainerConfig(loss="bpr", negative_samples=negative_samples, seed=seed)
        )
        batch = _bpr_batch(herb_sets, num_herbs)
        return trainer._bpr_batch_loss(model, batch, np.random.default_rng(seed))

    def test_empty_herb_set_is_skipped(self):
        # the seed raised ValueError from rng.choice([]) here
        loss = self._loss([(), (1, 2)])
        assert np.isfinite(float(loss.data))

    def test_full_vocabulary_row_terminates(self):
        # the seed's rejection loop never terminated when a prescription
        # covered every herb; the row must be skipped, not spun on
        loss = self._loss([tuple(range(10)), (3,)])
        assert np.isfinite(float(loss.data))

    def test_all_rows_degenerate_yields_zero_loss(self):
        loss = self._loss([(), tuple(range(10))])
        assert float(loss.data) == 0.0

    def test_all_rows_degenerate_backward_works(self, tiny_split):
        train, _ = tiny_split
        model = _model(train)
        num_herbs = model.num_herbs
        batch = _bpr_batch([(), tuple(range(num_herbs))], num_herbs)
        trainer = Trainer(TrainerConfig(loss="bpr", seed=0))
        loss = trainer._bpr_batch_loss(model, batch, np.random.default_rng(0))
        assert float(loss.data) == 0.0
        loss.backward()  # gradients exist (all zero) so the step is a no-op

    def test_sampled_pairs_respect_membership(self, monkeypatch):
        import repro.training.trainer as trainer_module

        num_herbs = 12
        captured = {}
        real_bpr_loss = trainer_module.bpr_loss

        def capture(positive_scores, negative_scores):
            captured["pos"] = positive_scores.data.copy()
            captured["neg"] = negative_scores.data.copy()
            return real_bpr_loss(positive_scores, negative_scores)

        monkeypatch.setattr(trainer_module, "bpr_loss", capture)
        # the last row leaves exactly one herb free, forcing the exact
        # complement-sampling fallback after bounded rejection
        herb_sets = [(0, 1, 2), (5,), tuple(range(num_herbs - 1))]
        model = _IdentityScoreModel(num_symptoms=4, num_herbs=num_herbs)
        trainer = Trainer(TrainerConfig(loss="bpr", negative_samples=8, seed=0))
        batch = _bpr_batch(herb_sets, num_herbs)
        trainer._bpr_batch_loss(model, batch, np.random.default_rng(3))

        pos = captured["pos"].astype(np.int64)
        neg = captured["neg"].astype(np.int64)
        assert pos.size == len(herb_sets) * 8
        for flat_pos, flat_neg in zip(pos, neg):
            row = flat_pos // num_herbs
            assert flat_neg // num_herbs == row
            herb_set = set(herb_sets[row])
            assert flat_pos % num_herbs in herb_set
            assert flat_neg % num_herbs not in herb_set

    def test_only_negative_left_is_always_chosen(self):
        import repro.training.trainer as trainer_module

        num_herbs = 6
        captured = {}
        real_bpr_loss = trainer_module.bpr_loss

        def capture(positive_scores, negative_scores):
            captured["neg"] = negative_scores.data.copy()
            return real_bpr_loss(positive_scores, negative_scores)

        model = _IdentityScoreModel(num_symptoms=2, num_herbs=num_herbs)
        trainer = Trainer(TrainerConfig(loss="bpr", negative_samples=4, seed=0))
        batch = _bpr_batch([tuple(range(num_herbs - 1))], num_herbs)
        original = trainer_module.bpr_loss
        trainer_module.bpr_loss = capture
        try:
            trainer._bpr_batch_loss(model, batch, np.random.default_rng(9))
        finally:
            trainer_module.bpr_loss = original
        # only herb 5 is outside the set, so every negative must decode to it
        np.testing.assert_array_equal(captured["neg"].astype(np.int64) % num_herbs, 5)
