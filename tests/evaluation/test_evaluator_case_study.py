"""Tests for the Evaluator harness and the case-study tooling."""

import numpy as np
import pytest

from repro.evaluation import Evaluator, format_case_study, run_case_study
from repro.models import CooccurrenceRecommender, PopularityRecommender
from repro.models.base import HerbRecommender


class _OracleRecommender(HerbRecommender):
    """Scores the true herbs of each test prescription highest (for testing)."""

    def __init__(self, dataset):
        self._dataset = dataset
        self._lookup = {p.symptoms: p.herbs for p in dataset}

    @property
    def num_herbs(self):
        return self._dataset.num_herbs

    def score_sets(self, symptom_sets):
        scores = np.zeros((len(symptom_sets), self.num_herbs))
        for row, symptoms in enumerate(symptom_sets):
            herbs = self._lookup.get(tuple(symptoms), ())
            scores[row, list(herbs)] = 1.0
        return scores


class _BadShapeRecommender(HerbRecommender):
    def __init__(self, num_herbs):
        self._num_herbs = num_herbs

    @property
    def num_herbs(self):
        return self._num_herbs

    def score_sets(self, symptom_sets):
        return np.zeros((len(symptom_sets), self._num_herbs + 1))


class TestEvaluator:
    def test_oracle_gets_perfect_precision_at_small_k(self, tiny_split):
        _, test = tiny_split
        evaluator = Evaluator(test, ks=(5,))
        oracle = _OracleRecommender(test)
        result = evaluator.evaluate(oracle, name="oracle")
        # every test prescription has at least 5 herbs in the tiny corpus, so the
        # oracle is near-perfect (duplicate symptom sets with different herb sets
        # can cost a fraction of a point)
        min_herbs = min(p.num_herbs for p in test)
        if min_herbs >= 5:
            assert result.metric("p@5") >= 0.95
        assert result.metric("r@5") > 0.3
        assert result.model_name == "oracle"
        assert result.num_prescriptions == len(test)

    def test_popularity_vs_cooccurrence_ordering(self, tiny_split):
        train, test = tiny_split
        evaluator = Evaluator(test, ks=(5, 10))
        pop = evaluator.evaluate(PopularityRecommender(train.num_herbs).fit(train))
        cooc = evaluator.evaluate(
            CooccurrenceRecommender(train.num_symptoms, train.num_herbs).fit(train)
        )
        assert cooc.metric("ndcg@10") >= pop.metric("ndcg@10") - 1e-9

    def test_score_matrix_shape(self, tiny_split):
        train, test = tiny_split
        evaluator = Evaluator(test, ks=(5,), batch_size=16)
        scores = evaluator.score_matrix(PopularityRecommender(train.num_herbs).fit(train))
        assert scores.shape == (len(test), test.num_herbs)

    def test_bad_score_shape_rejected(self, tiny_split):
        _, test = tiny_split
        evaluator = Evaluator(test, ks=(5,))
        with pytest.raises(ValueError):
            evaluator.score_matrix(_BadShapeRecommender(test.num_herbs))

    def test_metric_keys(self, tiny_split):
        _, test = tiny_split
        evaluator = Evaluator(test, ks=(5, 20))
        assert evaluator.metric_keys() == ("p@5", "p@20", "r@5", "r@20", "ndcg@5", "ndcg@20")

    def test_result_as_row_and_missing_metric(self, tiny_split):
        train, test = tiny_split
        evaluator = Evaluator(test, ks=(5,))
        result = evaluator.evaluate(PopularityRecommender(train.num_herbs).fit(train), name="pop")
        row = result.as_row(["p@5"])
        assert row["model"] == "pop"
        with pytest.raises(KeyError):
            result.metric("p@999")

    def test_invalid_construction(self, tiny_split):
        _, test = tiny_split
        with pytest.raises(ValueError):
            Evaluator(test, ks=())
        with pytest.raises(ValueError):
            Evaluator(test, ks=(0,))
        with pytest.raises(ValueError):
            Evaluator(test, batch_size=0)


class TestCaseStudy:
    def test_entries_have_token_names(self, tiny_split):
        train, test = tiny_split
        model = CooccurrenceRecommender(train.num_symptoms, train.num_herbs).fit(train)
        entries = run_case_study(model, test, num_cases=3, top_k=5, rng=np.random.default_rng(0))
        assert len(entries) == 3
        for entry in entries:
            assert all(isinstance(s, str) and s.startswith("symptom_") for s in entry.symptoms)
            assert all(isinstance(h, str) and h.startswith("herb_") for h in entry.recommended_herbs)
            assert len(entry.recommended_herbs) == 5
            assert set(entry.hits) <= set(entry.true_herbs)
            assert 0.0 <= entry.precision <= 1.0
            assert 0.0 <= entry.recall <= 1.0

    def test_explicit_indices(self, tiny_split):
        train, test = tiny_split
        model = PopularityRecommender(train.num_herbs).fit(train)
        entries = run_case_study(model, test, indices=[0, 1], top_k=3)
        assert len(entries) == 2
        assert entries[0].symptoms == test.symptom_vocab.decode(test[0].symptoms)

    def test_oracle_case_study_hits_everything(self, tiny_split):
        _, test = tiny_split
        oracle = _OracleRecommender(test)
        entries = run_case_study(oracle, test, indices=[0], top_k=test[0].num_herbs)
        assert set(entries[0].hits) == set(entries[0].true_herbs)

    def test_format_output(self, tiny_split):
        train, test = tiny_split
        model = PopularityRecommender(train.num_herbs).fit(train)
        entries = run_case_study(model, test, num_cases=2, top_k=4, rng=np.random.default_rng(1))
        text = format_case_study(entries)
        assert "Case 1" in text and "Case 2" in text
        assert "Symptom set" in text

    def test_invalid_top_k(self, tiny_split):
        train, test = tiny_split
        model = PopularityRecommender(train.num_herbs).fit(train)
        with pytest.raises(ValueError):
            run_case_study(model, test, top_k=0)
