"""Tests for the ranking metrics (paper Eqs. 16-18)."""

import numpy as np
import pytest

from repro.evaluation import (
    evaluate_ranking,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    top_k_indices,
)


class TestTopK:
    def test_orders_by_score(self):
        scores = np.array([[0.1, 0.9, 0.5, 0.7]])
        np.testing.assert_array_equal(top_k_indices(scores, 3)[0], [1, 3, 2])

    def test_k_larger_than_items(self):
        scores = np.array([[0.3, 0.1]])
        assert top_k_indices(scores, 10).shape == (1, 2)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            top_k_indices(np.zeros(3), 1)
        with pytest.raises(ValueError):
            top_k_indices(np.zeros((2, 3)), 0)


class TestPrecisionRecall:
    def test_perfect_ranking(self):
        scores = np.array([[0.9, 0.8, 0.1, 0.0]])
        truth = [(0, 1)]
        assert precision_at_k(scores, truth, 2) == pytest.approx(1.0)
        assert recall_at_k(scores, truth, 2) == pytest.approx(1.0)

    def test_half_hit(self):
        scores = np.array([[0.9, 0.1, 0.8, 0.0]])
        truth = [(0, 1)]
        assert precision_at_k(scores, truth, 2) == pytest.approx(0.5)
        assert recall_at_k(scores, truth, 2) == pytest.approx(0.5)

    def test_precision_denominator_is_k(self):
        # one relevant herb, k=5: precision can be at most 1/5
        scores = np.array([[1.0, 0.9, 0.8, 0.7, 0.6, 0.0]])
        truth = [(0,)]
        assert precision_at_k(scores, truth, 5) == pytest.approx(0.2)
        assert recall_at_k(scores, truth, 5) == pytest.approx(1.0)

    def test_averaged_over_prescriptions(self):
        scores = np.array([[1.0, 0.0], [0.0, 1.0]])
        truth = [(0,), (0,)]
        assert precision_at_k(scores, truth, 1) == pytest.approx(0.5)

    def test_mismatched_rows_rejected(self):
        with pytest.raises(ValueError):
            precision_at_k(np.zeros((2, 3)), [(0,)], 1)

    def test_precision_uses_effective_k_when_k_exceeds_items(self):
        # 3 herbs, k=10: every herb is recommended, so a ranking that covers
        # all the truth is perfect — dividing by the requested k=10 would
        # wrongly report 3/10
        scores = np.array([[0.9, 0.8, 0.7]])
        truth = [(0, 1, 2)]
        assert precision_at_k(scores, truth, 10) == pytest.approx(1.0)
        assert recall_at_k(scores, truth, 10) == pytest.approx(1.0)

    def test_precision_effective_k_partial_hits(self):
        # 4 herbs, k=9 clamps to 4; two of the four recommended are relevant
        scores = np.array([[0.9, 0.8, 0.7, 0.6]])
        truth = [(0, 2)]
        assert precision_at_k(scores, truth, 9) == pytest.approx(0.5)


class TestNDCG:
    def test_perfect_is_one(self):
        scores = np.array([[0.9, 0.8, 0.7, 0.0]])
        truth = [(0, 1, 2)]
        assert ndcg_at_k(scores, truth, 3) == pytest.approx(1.0)

    def test_position_matters(self):
        truth = [(0,)]
        early = ndcg_at_k(np.array([[0.9, 0.5, 0.4]]), truth, 3)
        late = ndcg_at_k(np.array([[0.4, 0.5, 0.9]]), truth, 3)
        assert early > late
        assert early == pytest.approx(1.0)
        assert late == pytest.approx(1.0 / np.log2(4))

    def test_no_hits_is_zero(self):
        scores = np.array([[0.9, 0.8, 0.0]])
        truth = [(2,)]
        assert ndcg_at_k(scores, truth, 2) == pytest.approx(0.0)

    def test_idcg_truncation(self):
        # 5 relevant herbs but k=2: ideal DCG uses only the first two positions
        scores = np.array([[1.0, 0.9, 0.1, 0.1, 0.1, 0.0]])
        truth = [(0, 1, 2, 3, 4)]
        assert ndcg_at_k(scores, truth, 2) == pytest.approx(1.0)


class TestEvaluateRanking:
    def test_contains_all_keys(self):
        scores = np.array([[0.5, 0.1, 0.9]])
        truth = [(2,)]
        metrics = evaluate_ranking(scores, truth, ks=(1, 2))
        assert set(metrics) == {"p@1", "r@1", "ndcg@1", "p@2", "r@2", "ndcg@2"}

    def test_recall_monotone_in_k(self):
        rng = np.random.default_rng(0)
        scores = rng.random((20, 30))
        truth = [tuple(rng.choice(30, size=5, replace=False)) for _ in range(20)]
        metrics = evaluate_ranking(scores, truth, ks=(5, 10, 20))
        assert metrics["r@5"] <= metrics["r@10"] <= metrics["r@20"]

    def test_precision_decreasing_in_k_for_strong_ranker(self):
        # When the ranker puts the 3 relevant herbs first, p@5 = 3/5 > p@20 = 3/20.
        num_herbs = 40
        scores = np.zeros((10, num_herbs))
        truth = []
        rng = np.random.default_rng(1)
        for row in range(10):
            relevant = rng.choice(num_herbs, size=3, replace=False)
            scores[row, relevant] = [3.0, 2.0, 1.0]
            truth.append(tuple(relevant))
        metrics = evaluate_ranking(scores, truth, ks=(5, 20))
        assert metrics["p@5"] == pytest.approx(3 / 5)
        assert metrics["p@20"] == pytest.approx(3 / 20)

    def test_random_scores_near_chance(self):
        rng = np.random.default_rng(2)
        num_herbs = 100
        scores = rng.random((200, num_herbs))
        truth = [tuple(rng.choice(num_herbs, size=10, replace=False)) for _ in range(200)]
        p5 = precision_at_k(scores, truth, 5)
        assert abs(p5 - 10 / num_herbs) < 0.05


class TestVectorizedAgainstReference:
    """The NumPy-vectorized metrics must equal a straightforward Python loop."""

    @staticmethod
    def _reference_metrics(scores, truth_sets, k):
        top = top_k_indices(scores, k)
        k_eff = top.shape[1]
        discounts = 1.0 / np.log2(np.arange(2, k_eff + 2))
        precisions, recalls, ndcgs = [], [], []
        for row, truth in enumerate(truth_sets):
            truth_set = set(truth)
            hits = np.array([1.0 if herb in truth_set else 0.0 for herb in top[row]])
            precisions.append(hits.sum() / k_eff)
            if not truth_set:
                continue
            recalls.append(hits.sum() / len(truth_set))
            idcg = discounts[: min(len(truth_set), k_eff)].sum()
            ndcgs.append((hits * discounts).sum() / idcg if idcg > 0 else 0.0)
        return (
            float(np.mean(precisions)),
            float(np.mean(recalls)) if recalls else 0.0,
            float(np.mean(ndcgs)) if ndcgs else 0.0,
        )

    @pytest.mark.parametrize("k", [1, 5, 10, 50])
    def test_matches_reference_on_random_data(self, k):
        rng = np.random.default_rng(17)
        num_herbs = 40
        scores = rng.normal(size=(60, num_herbs))
        truth = [
            tuple(rng.choice(num_herbs, size=int(rng.integers(0, 12)), replace=False))
            for _ in range(60)
        ]
        ref_p, ref_r, ref_n = self._reference_metrics(scores, truth, k)
        assert precision_at_k(scores, truth, k) == pytest.approx(ref_p)
        assert recall_at_k(scores, truth, k) == pytest.approx(ref_r)
        assert ndcg_at_k(scores, truth, k) == pytest.approx(ref_n)

    def test_all_empty_truth_sets(self):
        scores = np.random.default_rng(5).random((4, 6))
        truth = [(), (), (), ()]
        assert recall_at_k(scores, truth, 3) == 0.0
        assert ndcg_at_k(scores, truth, 3) == 0.0
        assert precision_at_k(scores, truth, 3) == 0.0

    def test_out_of_range_truth_ids_rejected(self):
        scores = np.zeros((1, 5))
        with pytest.raises(ValueError, match="truth ids"):
            recall_at_k(scores, [(7,)], 3)
        with pytest.raises(ValueError, match="truth ids"):
            precision_at_k(scores, [(-1,)], 3)

    def test_evaluate_ranking_matches_individual_metrics(self):
        rng = np.random.default_rng(23)
        scores = rng.normal(size=(30, 25))
        truth = [tuple(rng.choice(25, size=4, replace=False)) for _ in range(30)]
        metrics = evaluate_ranking(scores, truth, ks=(3, 7))
        for k in (3, 7):
            assert metrics[f"p@{k}"] == pytest.approx(precision_at_k(scores, truth, k))
            assert metrics[f"r@{k}"] == pytest.approx(recall_at_k(scores, truth, k))
            assert metrics[f"ndcg@{k}"] == pytest.approx(ndcg_at_k(scores, truth, k))
