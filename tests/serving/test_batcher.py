"""Deterministic MicroBatcher tests: injected fake clock, manual drive, no sleeps.

The batcher is constructed with ``start=False`` so nothing runs in the
background; flush timing is evaluated only when ``poll()`` is called, against
a clock the test advances explicitly.  A final class exercises the threaded
worker for real (futures block, still no ``sleep`` calls in the tests).
"""

import threading

import pytest

from repro.serving import MicroBatcher, ServerStats


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class RecordingHandler:
    """Echo handler that remembers every batch it was flushed."""

    def __init__(self) -> None:
        self.batches = []

    def __call__(self, payloads):
        self.batches.append(list(payloads))
        return [f"answer:{payload}" for payload in payloads]


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def handler():
    return RecordingHandler()


def manual_batcher(handler, clock, **kwargs):
    kwargs.setdefault("max_batch_size", 3)
    kwargs.setdefault("max_wait_ms", 100.0)
    return MicroBatcher(handler, clock=clock, start=False, **kwargs)


class TestSizeTrigger:
    def test_flushes_when_batch_fills(self, handler, clock):
        batcher = manual_batcher(handler, clock)
        futures = [batcher.submit(f"r{i}") for i in range(3)]
        assert batcher.poll() == 3
        assert handler.batches == [["r0", "r1", "r2"]]
        assert [f.result(timeout=0) for f in futures] == ["answer:r0", "answer:r1", "answer:r2"]

    def test_no_flush_below_size_before_deadline(self, handler, clock):
        batcher = manual_batcher(handler, clock)
        batcher.submit("r0")
        batcher.submit("r1")
        assert batcher.poll() == 0
        assert handler.batches == []
        assert batcher.pending_count() == 2

    def test_oversized_burst_splits_into_max_size_batches(self, handler, clock):
        batcher = manual_batcher(handler, clock, max_batch_size=3)
        futures = [batcher.submit(f"r{i}") for i in range(7)]
        clock.advance(1.0)  # make the 7 % 3 tail ready too
        assert batcher.poll() == 7
        assert [len(batch) for batch in handler.batches] == [3, 3, 1]
        assert all(f.done() for f in futures)


class TestTimeoutTrigger:
    def test_flushes_partial_batch_at_deadline(self, handler, clock):
        batcher = manual_batcher(handler, clock, max_wait_ms=100.0)
        futures = [batcher.submit("r0"), batcher.submit("r1")]
        clock.advance(0.099)
        assert batcher.poll() == 0, "just under the deadline must not flush"
        clock.advance(0.001)
        assert batcher.poll() == 2
        assert handler.batches == [["r0", "r1"]]
        assert [f.result(timeout=0) for f in futures] == ["answer:r0", "answer:r1"]

    def test_deadline_measured_from_oldest_request(self, handler, clock):
        batcher = manual_batcher(handler, clock, max_wait_ms=100.0)
        batcher.submit("old")
        clock.advance(0.09)
        batcher.submit("new")
        clock.advance(0.011)  # old past its 100ms deadline, new only 11ms in
        assert batcher.poll() == 2, "the partial batch flushes with the oldest request"

    def test_zero_wait_flushes_any_pending(self, handler, clock):
        batcher = manual_batcher(handler, clock, max_wait_ms=0.0)
        batcher.submit("r0")
        assert batcher.poll() == 1


class TestErrorHandling:
    def test_handler_exception_fails_batch_without_killing_batcher(self, clock):
        calls = {"n": 0}

        def flaky(payloads):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("scoring exploded")
            return list(payloads)

        batcher = MicroBatcher(flaky, max_batch_size=2, clock=clock, start=False)
        poisoned = [batcher.submit("a"), batcher.submit("b")]
        batcher.poll()
        for future in poisoned:
            with pytest.raises(RuntimeError, match="scoring exploded"):
                future.result(timeout=0)
        healthy = [batcher.submit("c"), batcher.submit("d")]
        batcher.poll()
        assert [f.result(timeout=0) for f in healthy] == ["c", "d"]

    def test_wrong_result_count_is_an_error(self, clock):
        batcher = MicroBatcher(lambda payloads: ["only one"], max_batch_size=2, clock=clock, start=False)
        future = batcher.submit("a")
        batcher.submit("b")
        batcher.poll()
        with pytest.raises(RuntimeError, match="2 requests"):
            future.result(timeout=0)


class TestShutdown:
    def test_close_drains_pending_queue(self, handler, clock):
        batcher = manual_batcher(handler, clock)
        futures = [batcher.submit("r0"), batcher.submit("r1")]
        batcher.close()  # neither size nor deadline reached — drain anyway
        assert handler.batches == [["r0", "r1"]]
        assert [f.result(timeout=0) for f in futures] == ["answer:r0", "answer:r1"]

    def test_close_without_drain_fails_pending_futures(self, handler, clock):
        batcher = manual_batcher(handler, clock)
        future = batcher.submit("r0")
        batcher.close(drain=False)
        with pytest.raises(RuntimeError, match="closed"):
            future.result(timeout=0)
        assert handler.batches == []

    def test_submit_after_close_rejected(self, handler, clock):
        batcher = manual_batcher(handler, clock)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit("late")

    def test_close_is_idempotent(self, handler, clock):
        batcher = manual_batcher(handler, clock)
        batcher.close()
        batcher.close()


class TestValidationAndStats:
    def test_rejects_bad_parameters(self, handler, clock):
        with pytest.raises(ValueError):
            MicroBatcher(handler, max_batch_size=0, start=False)
        with pytest.raises(ValueError):
            MicroBatcher(handler, max_wait_ms=-1.0, start=False)

    def test_records_batches_and_latencies(self, handler, clock):
        stats = ServerStats()
        batcher = manual_batcher(handler, clock, max_batch_size=2, stats=stats)
        batcher.submit("r0")
        clock.advance(0.05)
        batcher.submit("r1")
        clock.advance(0.05)  # r0 waited 100ms, r1 50ms
        batcher.poll()
        assert stats.requests == 2
        assert stats.batches == 1
        assert stats.mean_batch_size == 2.0
        assert stats.latency_ms(100) == pytest.approx(100.0)
        assert stats.latency_ms(0) == pytest.approx(50.0)

    def test_stats_empty_snapshot(self):
        stats = ServerStats()
        assert stats.latency_ms(95) == 0.0
        assert stats.mean_batch_size == 0.0
        assert stats.to_line().startswith("requests=0 ")
        assert "requests" in stats.to_text()


class TestThreadedMode:
    """The worker thread path: real clock, futures synchronise (no sleeps)."""

    def test_concurrent_producers_all_answered(self, handler):
        with MicroBatcher(handler, max_batch_size=8, max_wait_ms=5.0) as batcher:
            results = {}

            def producer(name):
                results[name] = batcher.submit(name).result(timeout=10)

            threads = [
                threading.Thread(target=producer, args=(f"p{i}",)) for i in range(16)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(10)
        assert results == {f"p{i}": f"answer:p{i}" for i in range(16)}
        assert sum(len(batch) for batch in handler.batches) == 16

    def test_start_twice_rejected(self, handler):
        batcher = MicroBatcher(handler, max_wait_ms=1.0)
        try:
            with pytest.raises(RuntimeError, match="already running"):
                batcher.start()
        finally:
            batcher.close()

    def test_threaded_close_drains(self, handler):
        batcher = MicroBatcher(handler, max_batch_size=100, max_wait_ms=60_000.0)
        future = batcher.submit("queued")
        batcher.close()  # deadline far away — close must still answer it
        assert future.result(timeout=0) == "answer:queued"

    def test_threaded_close_without_drain_fails_queued_futures(self, handler):
        batcher = MicroBatcher(handler, max_batch_size=100, max_wait_ms=60_000.0)
        futures = [batcher.submit(f"q{i}") for i in range(3)]
        batcher.close(drain=False)
        for future in futures:
            with pytest.raises(RuntimeError, match="closed before flush"):
                future.result(timeout=5)

    def test_close_without_drain_fails_batch_stuck_in_blocked_flush(self):
        """Regression: shutdown must not hang waiters behind a wedged handler.

        A handler that blocks forever used to make ``close(drain=False)``
        leave the in-flight batch's futures unresolved — any thread waiting
        on ``future.result()`` (a socket client, serve_lines) hung forever.
        Now the join is bounded and the stuck batch fails with a clear
        ``RuntimeError``; queued-but-untaken payloads fail immediately.
        """
        entered = threading.Event()
        release = threading.Event()

        def wedged(batch):
            entered.set()
            assert release.wait(timeout=30), "test teardown never released the handler"
            return [f"late:{payload}" for payload in batch]

        batcher = MicroBatcher(wedged, max_batch_size=1, max_wait_ms=0.0)
        stuck = batcher.submit("a")
        assert entered.wait(timeout=10), "the worker never picked up the first payload"
        queued = [batcher.submit("b"), batcher.submit("c")]
        try:
            batcher.close(drain=False, timeout=0.2)
            for future in queued:
                with pytest.raises(RuntimeError, match="closed before flush"):
                    future.result(timeout=5)
            with pytest.raises(RuntimeError, match="blocked flush"):
                stuck.result(timeout=5)
        finally:
            release.set()  # let the wedged worker thread finish and exit

    def test_flush_completing_after_forced_close_is_harmless(self):
        """The racing set_result on an already-failed future must not raise."""
        entered = threading.Event()
        release = threading.Event()

        def slow(batch):
            entered.set()
            release.wait(timeout=30)
            return [f"answer:{payload}" for payload in batch]

        batcher = MicroBatcher(slow, max_batch_size=1, max_wait_ms=0.0)
        stuck = batcher.submit("a")
        assert entered.wait(timeout=10)
        batcher.close(drain=False, timeout=0.1)
        with pytest.raises(RuntimeError, match="blocked flush"):
            stuck.result(timeout=5)
        release.set()
        # the worker resolves the batch late; InvalidStateError is swallowed
        # and the thread exits cleanly
        batcher._thread.join(10)
        assert not batcher._thread.is_alive()
