"""Tests for ServerStats, including the backend-topology extension.

The ``stats`` control line historically reported counters only; it now also
carries the serving topology (active compute backend, shard count, worker
liveness) whenever a backend-info provider is attached — and must degrade to
plain counters, never crash, when the provider is missing or failing.
"""

import pytest

from repro.serving import ServerStats


class TestCounters:
    def test_line_without_provider_is_pure_counters(self):
        stats = ServerStats()
        stats.record_request(0.002)
        line = stats.to_line()
        assert line.startswith("requests=1 ")
        assert "backend=" not in line

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            ServerStats().latency_ms(101)

    def test_p99_reported_in_line_snapshot_and_text(self):
        stats = ServerStats()
        for latency_ms in range(1, 101):  # p99 lands near the 99 ms sample
            stats.record_request(latency_ms / 1000.0)
        view = stats.snapshot()
        assert view["p50_ms"] <= view["p95_ms"] <= view["p99_ms"]
        assert 98.0 <= view["p99_ms"] <= 100.0
        assert "p99_ms=" in stats.to_line()
        assert "latency p99" in stats.to_text()


class TestAdmissionCounters:
    def test_connection_gauge_rises_and_falls(self):
        stats = ServerStats()
        stats.record_connection_open()
        stats.record_connection_open()
        stats.record_connection_close()
        assert stats.connections == 1
        assert "connections=1" in stats.to_line()
        assert stats.snapshot()["connections"] == 1

    def test_shed_counters_in_line_and_snapshot(self):
        stats = ServerStats()
        stats.record_rejected_overload()
        stats.record_rejected_overload()
        stats.record_rejected_quota()
        stats.record_idle_closed()
        assert (stats.rejected_overload, stats.rejected_quota, stats.idle_closed) == (2, 1, 1)
        line = stats.to_line()
        assert "rejected_overload=2" in line
        assert "rejected_quota=1" in line
        assert "idle_closed=1" in line
        view = stats.snapshot()
        assert view["rejected_overload"] == 2
        assert view["rejected_quota"] == 1
        assert view["idle_closed"] == 1

    def test_text_admission_line_only_when_shedding_happened(self):
        stats = ServerStats()
        assert "admission" not in stats.to_text()
        stats.record_rejected_overload()
        assert "admission" in stats.to_text()
        assert "1 overload" in stats.to_text()


class TestBackendInfo:
    def test_line_reports_backend_shards_and_liveness(self):
        stats = ServerStats()
        stats.set_backend_info(
            lambda: {"backend": "processes", "shards": 4, "workers": 4, "workers_alive": 3}
        )
        line = stats.to_line()
        assert "backend=processes" in line
        assert "shards=4" in line
        assert "workers_alive=3/4" in line

    def test_extra_keys_are_carried(self):
        stats = ServerStats()
        stats.set_backend_info(lambda: {"backend": "shard-worker", "snapshot": "m1-v3.9"})
        assert "snapshot=m1-v3.9" in stats.to_line()

    def test_text_gains_topology_line(self):
        stats = ServerStats()
        stats.set_backend_info(lambda: {"backend": "remote", "shards": 2, "workers": 2})
        assert "topology" in stats.to_text()
        assert "backend=remote" in stats.to_text()

    def test_failing_provider_degrades_to_counters(self):
        stats = ServerStats()

        def boom():
            raise RuntimeError("worker ping timed out")

        stats.set_backend_info(boom)
        assert stats.backend_info() == {}
        assert "backend=" not in stats.to_line()

    def test_detach(self):
        stats = ServerStats()
        stats.set_backend_info(lambda: {"backend": "numpy"})
        assert "backend=numpy" in stats.to_line()
        stats.set_backend_info(None)
        assert "backend=" not in stats.to_line()

    def test_snapshot_counters_unaffected(self):
        stats = ServerStats()
        stats.set_backend_info(lambda: {"backend": "threads", "workers": 2})
        stats.record_batch(3)
        view = stats.snapshot()
        assert view["batches"] == 1
        assert "backend" not in view, "numeric snapshot must stay numeric"
