"""Event-loop front-end tests: wire parity with the threaded server, and the
admission-control behaviour that only exists on the async path.

The parity tests run the same byte streams through both front-ends (trickled
one byte at a time, split across TCP segments, EOF mid-line, oversized lines,
invalid UTF-8) and assert identical answers — the event loop's reassembly
buffer must be invisible on the wire.  The admission tests use stub handlers
(echo, or gated on a ``threading.Event``) so shedding, quotas, idle reaping
and slow-client drops are exercised deterministically and fast.
"""

import json
import socket
import threading
import time

import pytest

from repro.serving import (
    LINE_TOO_LONG_RESPONSE,
    MAX_LINE_BYTES,
    OVERLOADED_RESPONSE,
    AdmissionController,
    AsyncSocketServer,
    MicroBatcher,
    RecommendationHandler,
    ServerStats,
    SocketServer,
)

# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def echo_handler(lines):
    return [f"ok {line}" for line in lines]


def wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def sequential_answer(pipeline, line, k=10):
    return " ".join(pipeline.decode_herbs(pipeline.recommend(line, k=k)))


class GatedHandler:
    """Blocks every batch on an event — makes 'scoring is busy' a test knob."""

    def __init__(self):
        self.gate = threading.Event()

    def __call__(self, lines):
        assert self.gate.wait(30), "test gate never opened"
        return [f"ok {line}" for line in lines]


@pytest.fixture()
def echo_stack(request):
    """An echo server behind either front-end (used by parametrized tests)."""
    frontend = getattr(request, "param", "async")
    stats = ServerStats()
    batcher = MicroBatcher(echo_handler, max_batch_size=16, max_wait_ms=2.0, stats=stats)
    if frontend == "threads":
        server = SocketServer(batcher, stats=stats).start()
    else:
        server = AsyncSocketServer(batcher, stats=stats).start()
    yield server, stats
    server.stop()
    batcher.close()


def make_async(handler, admission=None, control=None, **batcher_kwargs):
    stats = ServerStats()
    batcher_kwargs.setdefault("max_batch_size", 16)
    batcher_kwargs.setdefault("max_wait_ms", 2.0)
    batcher = MicroBatcher(handler, stats=stats, **batcher_kwargs)
    server = AsyncSocketServer(
        batcher, stats=stats, control=control, admission=admission
    ).start()
    return server, batcher, stats


# ----------------------------------------------------------------------
# Wire parity: both front-ends must reassemble and answer identically
# ----------------------------------------------------------------------


BOTH_FRONTENDS = pytest.mark.parametrize(
    "echo_stack", ["async", "threads"], indirect=True, ids=["async", "threads"]
)


@BOTH_FRONTENDS
class TestWireParity:
    def test_request_trickled_one_byte_at_a_time(self, echo_stack):
        server, _ = echo_stack
        with socket.create_connection(server.address, timeout=10) as connection:
            reader = connection.makefile("r", encoding="utf-8")
            for byte in b"hello event loop\n":
                connection.sendall(bytes([byte]))
            assert reader.readline().strip() == "ok hello event loop"

    def test_pipelined_requests_split_across_segments(self, echo_stack):
        server, _ = echo_stack
        with socket.create_connection(server.address, timeout=10) as connection:
            reader = connection.makefile("r", encoding="utf-8")
            connection.sendall(b"alpha\nbe")
            time.sleep(0.05)  # force the split to land in separate recv()s
            connection.sendall(b"ta\ngamma\n")
            assert [reader.readline().strip() for _ in range(3)] == [
                "ok alpha",
                "ok beta",
                "ok gamma",
            ]

    def test_eof_with_trailing_partial_line_still_answered(self, echo_stack):
        server, _ = echo_stack
        with socket.create_connection(server.address, timeout=10) as connection:
            reader = connection.makefile("r", encoding="utf-8")
            connection.sendall(b"no trailing newline")
            connection.shutdown(socket.SHUT_WR)
            assert reader.readline().strip() == "ok no trailing newline"
            assert reader.readline() == ""

    def test_oversized_line_answered_and_closed(self, echo_stack):
        server, _ = echo_stack
        with socket.create_connection(server.address, timeout=10) as connection:
            reader = connection.makefile("r", encoding="utf-8")
            connection.sendall(b"b" * (MAX_LINE_BYTES + 1))
            assert reader.readline().strip() == LINE_TOO_LONG_RESPONSE
            assert reader.readline() == ""

    def test_line_exactly_at_the_bound_is_served(self, echo_stack):
        server, _ = echo_stack
        content = b"q" + b" " * (MAX_LINE_BYTES - 2)  # MAX - 1 bytes of content
        with socket.create_connection(server.address, timeout=10) as connection:
            reader = connection.makefile("r", encoding="utf-8")
            connection.sendall(content + b"\n")
            assert reader.readline().strip() == "ok q"

    def test_invalid_utf8_answered_and_closed(self, echo_stack):
        server, _ = echo_stack
        with socket.create_connection(server.address, timeout=10) as connection:
            reader = connection.makefile("r", encoding="utf-8")
            connection.sendall(b"\xff\xfe\n")
            assert reader.readline().strip() == "error: request is not valid UTF-8"
            assert reader.readline() == ""

    def test_blank_line_closes_connection_but_not_server(self, echo_stack):
        server, _ = echo_stack
        with socket.create_connection(server.address, timeout=10) as connection:
            connection.sendall(b"\n")
            assert connection.makefile("r", encoding="utf-8").readline() == ""
        with socket.create_connection(server.address, timeout=10) as connection:
            connection.sendall(b"still alive\n")
            reader = connection.makefile("r", encoding="utf-8")
            assert reader.readline().strip() == "ok still alive"


# ----------------------------------------------------------------------
# Bit-identity against the real scoring stack
# ----------------------------------------------------------------------


#: Parametrizes a test over the exact oracle and the approx retrieval tier.
BOTH_RETRIEVALS = pytest.mark.parametrize(
    "serving_pipeline", ["exact", "approx"], indirect=True, ids=["exact", "approx"]
)


class TestAsyncScoringParity:
    QUERIES = ["0 3", "1 2 4", "k=2 0 3", "2", "0 1 2 3", "no_such_symptom"]

    @pytest.fixture()
    def async_stack(self, serving_pipeline):
        stats = ServerStats()
        handler = RecommendationHandler(serving_pipeline, k=5, stats=stats)
        batcher = MicroBatcher(handler, max_batch_size=64, max_wait_ms=10.0, stats=stats)
        server = AsyncSocketServer(batcher, stats=stats).start()
        stats.set_backend_info(serving_pipeline.engine.backend_status)
        yield server, stats
        stats.set_backend_info(None)
        server.stop()
        batcher.close()

    def _ask(self, address, lines):
        with socket.create_connection(address, timeout=30) as connection:
            reader = connection.makefile("r", encoding="utf-8")
            connection.sendall(("".join(line + "\n" for line in lines)).encode("utf-8"))
            return [reader.readline().strip() for _ in lines]

    def test_responses_bit_identical_to_threaded_front_end(self, pipeline, async_stack):
        async_server, _ = async_stack
        threaded_stats = ServerStats()
        threaded_batcher = MicroBatcher(
            RecommendationHandler(pipeline, k=5, stats=threaded_stats),
            max_batch_size=64,
            max_wait_ms=10.0,
            stats=threaded_stats,
        )
        threaded_server = SocketServer(threaded_batcher, stats=threaded_stats).start()
        try:
            async_answers = self._ask(async_server.address, self.QUERIES)
            threaded_answers = self._ask(threaded_server.address, self.QUERIES)
        finally:
            threaded_server.stop()
            threaded_batcher.close()
        assert async_answers == threaded_answers
        assert async_answers[0] == sequential_answer(pipeline, "0 3", k=5)
        assert async_answers[2] == sequential_answer(pipeline, "0 3", k=2)
        assert async_answers[5].startswith("error: unknown symptom token")

    @BOTH_RETRIEVALS
    def test_concurrent_clients_bit_identical_to_sequential(
        self, serving_pipeline, async_stack
    ):
        pipeline = serving_pipeline  # baseline through the same retrieval mode
        server, stats = async_stack
        queries = ["0 3", "1 2", "2 4 5", "0 1 2", "3", "1 4", "0 2 5", "2 3 4"]
        num_clients, rounds = 8, 3
        plans = [
            [queries[(client + round_) % len(queries)] for round_ in range(rounds)]
            for client in range(num_clients)
        ]
        barrier = threading.Barrier(num_clients)
        responses = [None] * num_clients

        def client(index):
            with socket.create_connection(server.address, timeout=30) as connection:
                reader = connection.makefile("r", encoding="utf-8")
                answers = []
                for line in plans[index]:
                    barrier.wait(timeout=30)
                    connection.sendall((line + "\n").encode("utf-8"))
                    answers.append(reader.readline().strip())
                responses[index] = answers

        threads = [threading.Thread(target=client, args=(i,)) for i in range(num_clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)

        expected = {query: sequential_answer(pipeline, query, k=5) for query in queries}
        for plan, answers in zip(plans, responses):
            assert answers is not None, "a client never finished"
            assert answers == [expected[query] for query in plan]
        assert stats.requests == num_clients * rounds
        assert stats.mean_batch_size > 1, "burst load must actually aggregate"

    def test_json_request_parity(self, pipeline, async_stack):
        server, _ = async_stack
        request = json.dumps({"symptoms": "0 3", "k": 4})
        [answer] = self._ask(server.address, [request])
        payload = json.loads(answer)
        assert payload["herbs"] == sequential_answer(pipeline, "0 3", k=4).split()

    def test_stats_control_line_reports_gauge_and_percentiles(self, async_stack):
        server, _ = async_stack
        with socket.create_connection(server.address, timeout=10) as connection:
            reader = connection.makefile("r", encoding="utf-8")
            connection.sendall(b"0 3\n")
            assert reader.readline().strip().startswith("herb_")
            # unlike the threaded front-end, a pipelined stats probe races the
            # scoring it follows (it runs on the side executor): ask after the
            # answer arrives so the counters are settled
            connection.sendall(b"stats\n")
            stats_line = reader.readline().strip()
        assert stats_line.startswith("requests=1 ")
        assert "p99_ms=" in stats_line
        assert "connections=1" in stats_line
        assert "rejected_overload=0" in stats_line


# ----------------------------------------------------------------------
# Admission control (async-only behaviour)
# ----------------------------------------------------------------------


class TestAdmissionControl:
    def test_connection_cap_refuses_with_explicit_line(self):
        admission = AdmissionController(max_connections=2)
        server, batcher, stats = make_async(echo_handler, admission=admission)
        try:
            first = socket.create_connection(server.address, timeout=10)
            second = socket.create_connection(server.address, timeout=10)
            readers = [c.makefile("r", encoding="utf-8") for c in (first, second)]
            for connection, reader in zip((first, second), readers):
                connection.sendall(b"hi\n")
                assert reader.readline().strip() == "ok hi"
            # both admitted slots are taken: the third client is accepted,
            # told why, and closed — not silently dropped
            with socket.create_connection(server.address, timeout=10) as third:
                reader = third.makefile("r", encoding="utf-8")
                assert reader.readline().strip() == OVERLOADED_RESPONSE
                assert reader.readline() == ""
            assert stats.rejected_overload >= 1
            first.close()
            readers[0].close()

            # the freed slot becomes usable once the loop notices the close
            def can_connect():
                with socket.create_connection(server.address, timeout=10) as probe:
                    probe.sendall(b"again\n")
                    return probe.makefile("r", encoding="utf-8").readline().strip() == "ok again"

            assert wait_until(can_connect), "closed connection never freed its slot"
            second.close()
            readers[1].close()
        finally:
            server.stop()
            batcher.close()

    def test_pending_queue_sheds_fast_while_scoring_is_stuck(self):
        handler = GatedHandler()
        admission = AdmissionController(max_pending=2, client_quota=10)
        server, batcher, stats = make_async(handler, admission=admission)
        try:
            filler = socket.create_connection(server.address, timeout=10)
            filler.sendall(b"one\ntwo\n")  # fills the entire pending budget
            assert wait_until(lambda: server.admission.pending == 2)

            started = time.monotonic()
            with socket.create_connection(server.address, timeout=10) as victim:
                victim.sendall(b"three\n")
                answer = victim.makefile("r", encoding="utf-8").readline().strip()
            elapsed = time.monotonic() - started
            # the whole point of shedding: rejection must not wait for scoring
            assert answer == OVERLOADED_RESPONSE
            assert elapsed < 2.0, f"shed response took {elapsed:.1f}s"
            assert stats.rejected_overload == 1

            handler.gate.set()
            reader = filler.makefile("r", encoding="utf-8")
            assert reader.readline().strip() == "ok one"
            assert reader.readline().strip() == "ok two"
            filler.close()
        finally:
            handler.gate.set()
            server.stop()
            batcher.close()

    def test_client_quota_sheds_in_request_order(self):
        handler = GatedHandler()
        admission = AdmissionController(client_quota=2, max_pending=100)
        server, batcher, stats = make_async(handler, admission=admission)
        try:
            with socket.create_connection(server.address, timeout=10) as connection:
                connection.sendall(b"a\nb\nc\nd\ne\n")  # quota admits 2, sheds 3
                assert wait_until(lambda: stats.rejected_quota == 3)
                handler.gate.set()
                reader = connection.makefile("r", encoding="utf-8")
                answers = [reader.readline().strip() for _ in range(5)]
            # responses come back in request order: admitted first two, then
            # the shed tail — line N of output still answers line N of input
            assert answers == ["ok a", "ok b"] + [OVERLOADED_RESPONSE] * 3
            assert stats.rejected_quota == 3
        finally:
            handler.gate.set()
            server.stop()
            batcher.close()

    def test_idle_connections_reaped_but_busy_ones_spared(self):
        handler = GatedHandler()
        admission = AdmissionController(idle_timeout_s=0.3)
        server, batcher, stats = make_async(handler, admission=admission)
        try:
            busy = socket.create_connection(server.address, timeout=10)
            busy.sendall(b"working\n")  # outstanding response: must be spared
            idler = socket.create_connection(server.address, timeout=10)
            assert idler.makefile("r", encoding="utf-8").readline() == "", (
                "idle connection was not reaped"
            )
            # the client can see the FIN before the loop thread records the
            # counter — poll rather than assert the instantaneous value
            assert wait_until(lambda: stats.idle_closed == 1)
            handler.gate.set()
            assert busy.makefile("r", encoding="utf-8").readline().strip() == "ok working"
            busy.close()
            idler.close()
        finally:
            handler.gate.set()
            server.stop()
            batcher.close()

    def test_slow_reader_does_not_stall_other_clients(self):
        big_handler = lambda lines: ["x" * 100_000 for _ in lines]  # noqa: E731
        server, batcher, _ = make_async(big_handler)
        try:
            slow = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            slow.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
            slow.connect(server.address)
            slow.sendall(b"flood\n" * 8)  # ~800 KB of responses it never reads

            started = time.monotonic()
            with socket.create_connection(server.address, timeout=10) as other:
                other.sendall(b"me too\n")
                answer = other.makefile("r", encoding="utf-8").readline().strip()
            elapsed = time.monotonic() - started
            assert answer == "x" * 100_000
            assert elapsed < 5.0, f"a slow reader stalled another client {elapsed:.1f}s"
            slow.close()
        finally:
            server.stop()
            batcher.close()

    def test_never_draining_client_is_dropped(self):
        # each response fits the outbuf cap (the cap's contract); the unread
        # *pile-up* of responses is what overflows it
        big_handler = lambda lines: ["y" * 32_000 for _ in lines]  # noqa: E731
        admission = AdmissionController(max_outbuf_bytes=1 << 16, client_quota=1000)
        server, batcher, _ = make_async(big_handler, admission=admission)
        try:
            slow = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            slow.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
            slow.connect(server.address)
            # 256 responses x 32 KB = 8 MB >> kernel buffers + the 64 KiB cap
            slow.sendall(b"drown\n" * 256)
            assert wait_until(lambda: server.slow_clients_closed >= 1), (
                "server never dropped the unread client"
            )
            slow.close()
            # the loop survived the drop and still serves
            with socket.create_connection(server.address, timeout=10) as other:
                other.sendall(b"probe\n")
                assert other.makefile("r", encoding="utf-8").readline().strip() == "y" * 32_000
        finally:
            server.stop()
            batcher.close()


# ----------------------------------------------------------------------
# Control lines and lifecycle on the event loop
# ----------------------------------------------------------------------


class TestControlAndLifecycle:
    def test_control_lines_answered_while_scoring_is_stuck(self):
        handler = GatedHandler()
        control = lambda line: "catalog: none" if line == "models" else None  # noqa: E731
        server, batcher, _ = make_async(handler, control=control)
        try:
            stuck = socket.create_connection(server.address, timeout=10)
            stuck.sendall(b"blocked request\n")
            # a second client's control line must not queue behind scoring:
            # control runs on the side executor, not the batcher thread
            started = time.monotonic()
            with socket.create_connection(server.address, timeout=10) as connection:
                connection.sendall(b"models\n")
                answer = connection.makefile("r", encoding="utf-8").readline().strip()
            elapsed = time.monotonic() - started
            assert answer == "catalog: none"
            assert elapsed < 2.0, f"control line waited {elapsed:.1f}s on scoring"
            handler.gate.set()
            assert stuck.makefile("r", encoding="utf-8").readline().strip() == "ok blocked request"
            stuck.close()
        finally:
            handler.gate.set()
            server.stop()
            batcher.close()

    def test_unhandled_control_verb_falls_back_to_scoring(self):
        control = lambda line: None  # noqa: E731 — "not a control line after all"
        server, batcher, _ = make_async(echo_handler, control=control)
        try:
            with socket.create_connection(server.address, timeout=10) as connection:
                connection.sendall(b"models extra operand\n")
                reader = connection.makefile("r", encoding="utf-8")
                assert reader.readline().strip() == "ok models extra operand"
        finally:
            server.stop()
            batcher.close()

    def test_control_response_ordered_behind_earlier_request(self):
        handler = GatedHandler()
        control = lambda line: "catalog: none" if line == "models" else None  # noqa: E731
        server, batcher, _ = make_async(handler, control=control)
        try:
            with socket.create_connection(server.address, timeout=10) as connection:
                connection.sendall(b"first\nmodels\n")
                connection.settimeout(0.5)
                # the control answer is ready, but slot order holds it behind
                # the gated scoring answer — same as the threaded front-end
                with pytest.raises(socket.timeout):
                    connection.recv(1)
                handler.gate.set()
                connection.settimeout(10)
                reader = connection.makefile("r", encoding="utf-8")
                assert reader.readline().strip() == "ok first"
                assert reader.readline().strip() == "catalog: none"
        finally:
            handler.gate.set()
            server.stop()
            batcher.close()

    def test_stop_is_prompt(self):
        server, batcher, _ = make_async(echo_handler)
        with socket.create_connection(server.address, timeout=10) as connection:
            connection.sendall(b"warm\n")
            assert connection.makefile("r", encoding="utf-8").readline().strip() == "ok warm"
            started = time.monotonic()
            server.stop()
            elapsed = time.monotonic() - started
        batcher.close()
        assert elapsed < 2.0, f"stop() took {elapsed:.1f}s"
        assert not server._thread.is_alive()

    def test_stop_refuses_new_connections(self):
        server, batcher, _ = make_async(echo_handler)
        address = server.address
        server.stop()
        batcher.close()
        try:
            with socket.create_connection(address, timeout=2) as connection:
                connection.sendall(b"anyone\n")
                line = connection.makefile("r", encoding="utf-8").readline().strip()
                assert line in ("", OVERLOADED_RESPONSE)
        except OSError:
            pass  # refused outright — also fine

    def test_admission_controller_validates_parameters(self):
        for bad in (
            {"max_connections": 0},
            {"max_pending": -1},
            {"client_quota": 0},
            {"idle_timeout_s": -1.0},
            {"max_outbuf_bytes": 0},
        ):
            with pytest.raises(ValueError):
                AdmissionController(**bad)
        assert AdmissionController(idle_timeout_s=0).idle_timeout_s is None
