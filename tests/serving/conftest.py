"""Shared serving-test fixtures.

The socket end-to-end tests (threaded and event-loop front-ends) all score
against one smoke-scale pipeline; training it once per session keeps the
suite fast without weakening any bit-identity assertion — determinism is
asserted against the *same* weights everywhere.
"""

import pytest

from repro.api import Pipeline
from repro.experiments.datasets import get_profile


@pytest.fixture(scope="session")
def pipeline():
    return Pipeline(
        "SMGCN", scale="smoke", trainer_config=get_profile("smoke").trainer_config(epochs=1)
    ).fit()


@pytest.fixture(scope="session")
def approx_pipeline(pipeline, tmp_path_factory):
    """The same weights served through the two-stage approximate tier.

    Round-tripped through a checkpoint (the production shape: train once,
    serve approx from the saved bundle).  ``candidate_factor=2`` with the
    handlers' ``k=5`` keeps a 10-herb survivor pool out of the smoke
    vocabulary's 50, so the int8 first pass genuinely prunes.
    """
    path = tmp_path_factory.mktemp("serving-approx") / "smgcn.npz"
    pipeline.save(path)
    served = Pipeline.load(path, retrieval="approx", candidate_factor=2)
    assert served.engine.retrieval_active
    yield served
    served.close()


@pytest.fixture()
def serving_pipeline(request, pipeline, approx_pipeline):
    """Indirect-parametrization hook: ``"exact"`` (the default) or ``"approx"``.

    Front-end fixtures build their serving stack on this, so any test can be
    parametrized over retrieval modes with
    ``pytest.mark.parametrize("serving_pipeline", [...], indirect=True)``
    while unparametrized tests keep serving the exact oracle.
    """
    return approx_pipeline if getattr(request, "param", "exact") == "approx" else pipeline
