"""Shared serving-test fixtures.

The socket end-to-end tests (threaded and event-loop front-ends) all score
against one smoke-scale pipeline; training it once per session keeps the
suite fast without weakening any bit-identity assertion — determinism is
asserted against the *same* weights everywhere.
"""

import pytest

from repro.api import Pipeline
from repro.experiments.datasets import get_profile


@pytest.fixture(scope="session")
def pipeline():
    return Pipeline(
        "SMGCN", scale="smoke", trainer_config=get_profile("smoke").trainer_config(epochs=1)
    ).fit()
