"""Multi-model serving tests: routing, JSON protocol, control lines, canary.

These drive the serving stack the way a multi-tenant deployment does: a
:class:`~repro.io.catalog.ModelCatalog` with two SMGCN builds (different
seeds, so distinguishable answers), requests routed per line, rollouts
issued over the wire mid-connection — always asserting the untouched entry
answers bit-identically throughout.
"""

import json
import socket

import pytest

from repro.api import Pipeline
from repro.experiments.datasets import get_profile
from repro.io import ModelCatalog
from repro.serving import (
    CatalogControl,
    MicroBatcher,
    RecommendationHandler,
    ServerStats,
    SocketServer,
)


@pytest.fixture(scope="module")
def checkpoints(tmp_path_factory):
    directory = tmp_path_factory.mktemp("serving-ckpts")
    config = get_profile("smoke").trainer_config(epochs=1)
    paths = {}
    for name, seed in (("a", 0), ("b", 7)):
        pipeline = Pipeline("SMGCN", scale="smoke", seed=seed, trainer_config=config).fit()
        paths[name] = directory / f"smgcn-{name}.npz"
        pipeline.save(paths[name])
        pipeline.close()
    return paths


@pytest.fixture(scope="module")
def baselines(checkpoints):
    """Sequential single-model answers, the bit-identity reference."""
    answers = {}
    for name, path in checkpoints.items():
        pipeline = Pipeline.load(path)
        answers[name] = {
            query: " ".join(pipeline.decode_herbs(pipeline.recommend(query, k=5)))
            for query in ("0 3", "1 2", "2 4")
        }
        pipeline.close()
    return answers


@pytest.fixture()
def catalog(checkpoints):
    catalog = ModelCatalog()
    catalog.add("alpha", Pipeline.load(checkpoints["a"]), checkpoint_path=checkpoints["a"])
    catalog.add("beta", Pipeline.load(checkpoints["b"]), checkpoint_path=checkpoints["b"])
    yield catalog
    catalog.close()


class TestModelRouting:
    def test_model_prefix_routes_and_default_is_first_entry(self, catalog, baselines):
        handler = RecommendationHandler(catalog, k=5)
        responses = handler(["model=alpha 0 3", "model=beta 0 3", "0 3"])
        assert responses[0] == baselines["a"]["0 3"]
        assert responses[1] == baselines["b"]["0 3"]
        assert responses[2] == baselines["a"]["0 3"]  # unrouted -> default
        assert responses[0] != responses[1], "seeds must produce distinguishable answers"

    def test_prefixes_compose_in_either_order(self, catalog, baselines):
        handler = RecommendationHandler(catalog, k=10)
        first, second = handler(["model=beta k=5 0 3", "k=5 model=beta 0 3"])
        assert first == second == baselines["b"]["0 3"]

    def test_unknown_model_is_an_error_line_naming_the_fleet(self, catalog):
        handler = RecommendationHandler(catalog, k=5)
        response = handler(["model=gamma 0 3"])[0]
        assert response.startswith("error: unknown model 'gamma'")
        assert "alpha" in response and "beta" in response

    def test_one_entrys_poison_cannot_fail_anothers_requests(
        self, catalog, baselines, monkeypatch
    ):
        handler = RecommendationHandler(catalog, k=5)
        beta = catalog.entry("beta").pipeline

        def explode(*args, **kwargs):
            raise RuntimeError("beta scoring exploded")

        monkeypatch.setattr(beta, "recommend_many", explode)
        monkeypatch.setattr(beta, "recommend", explode)
        responses = handler(["model=alpha 0 3", "model=beta 0 3"])
        assert responses[0] == baselines["a"]["0 3"]
        assert responses[1] == "error: beta scoring exploded"

    def test_per_model_stats_breakdown(self, catalog):
        stats = ServerStats()
        handler = RecommendationHandler(catalog, k=5, stats=stats)
        handler(["model=alpha 0 3", "model=beta 0 3", "model=beta bogus", "0 3"])
        assert stats.per_model() == {
            "alpha": {"requests": 2, "errors": 0},
            "beta": {"requests": 2, "errors": 1},
        }
        line = stats.to_line()
        assert "models=alpha:2/0,beta:2/1" in line


class TestJsonProtocol:
    def test_json_request_answers_with_structured_response(self, catalog, baselines):
        handler = RecommendationHandler(catalog, k=10)
        line = json.dumps({"symptoms": [0, 3], "k": 5, "model": "beta"})
        payload = json.loads(handler([line])[0])
        assert payload["model"] == "beta"
        assert " ".join(payload["herbs"]) == baselines["b"]["0 3"]
        assert len(payload["scores"]) == 5
        assert payload["scores"] == sorted(payload["scores"], reverse=True)

    def test_json_symptoms_accepts_token_string(self, catalog, baselines):
        handler = RecommendationHandler(catalog, k=5)
        payload = json.loads(handler([json.dumps({"symptoms": "0 3"})])[0])
        assert payload["model"] == "alpha"
        assert " ".join(payload["herbs"]) == baselines["a"]["0 3"]

    def test_json_errors_stay_json(self, catalog):
        handler = RecommendationHandler(catalog, k=5)
        bad_lines = [
            "{not json",
            json.dumps({"symptoms": "0 3", "bogus": 1}),
            json.dumps({"k": 5}),
            json.dumps({"symptoms": "0 3", "k": 0}),
            json.dumps({"symptoms": "0 3", "model": "gamma"}),
        ]
        for response in handler(bad_lines):
            assert "error" in json.loads(response)

    def test_json_and_text_mix_in_one_batch(self, catalog, baselines):
        handler = RecommendationHandler(catalog, k=5)
        responses = handler(["0 3", json.dumps({"symptoms": "0 3", "model": "beta"})])
        assert responses[0] == baselines["a"]["0 3"]
        assert json.loads(responses[1])["model"] == "beta"


class TestCatalogControl:
    def test_models_line_is_machine_readable(self, catalog):
        control = CatalogControl(catalog)
        for name in catalog.names():  # serve-path warm-up builds the engines
            catalog.entry(name).pipeline.engine
        records = json.loads(control.handle("models"))
        assert [record["name"] for record in records] == ["alpha", "beta"]
        assert records[0]["default"] is True
        assert all("cached_index_versions" in record for record in records)
        assert all(record["version"] == 1 for record in records)

    def test_unrelated_lines_pass_through(self, catalog):
        control = CatalogControl(catalog)
        assert control.handle("0 3") is None
        assert control.handle("models extra tokens") is None
        assert control.handle("") is None

    def test_reload_rolls_one_entry_only(self, catalog, checkpoints, baselines):
        handler = RecommendationHandler(catalog, k=5)
        control = CatalogControl(catalog)
        response = control.handle(f"reload alpha {checkpoints['b']}")
        assert response.startswith("ok: alpha now v2")
        assert handler(["model=alpha 0 3"])[0] == baselines["b"]["0 3"]
        assert handler(["model=beta 0 3"])[0] == baselines["b"]["0 3"]  # untouched

    def test_reload_failure_answers_in_band(self, catalog, tmp_path):
        control = CatalogControl(catalog)
        assert control.handle("reload alpha").startswith("error: usage:")
        response = control.handle(f"reload alpha {tmp_path / 'missing.npz'}")
        assert response.startswith("error: checkpoint")
        assert catalog.entry("alpha").version.ordinal == 1

    def test_canary_lifecycle_over_control_lines(self, catalog, checkpoints):
        handler = RecommendationHandler(catalog, k=5)
        control = CatalogControl(catalog)
        assert control.handle("canary alpha").startswith("error: no canary")
        started = control.handle(f"canary alpha {checkpoints['b']} 1.0")
        assert started.startswith("ok: canary on alpha at fraction 1")
        before = handler(["model=alpha 0 3"])[0]
        handler(["model=alpha 1 2", "model=alpha 2 4"])
        report = json.loads(control.handle("canary alpha"))
        assert report["model"] == "alpha"
        assert report["mirrored"] == 3
        assert report["errors"] == 0
        assert report["mean_shadow_ms"] > 0
        # mirroring never changes the primary answer
        assert handler(["model=alpha 0 3"])[0] == before
        stopped = json.loads(control.handle("canary alpha off"))
        assert stopped["stopped"] is True
        assert catalog.entry("alpha").canary is None


class TestSocketIntegration:
    def test_mixed_protocol_over_one_connection_with_live_reload(
        self, catalog, checkpoints, baselines
    ):
        stats = ServerStats()
        handler = RecommendationHandler(catalog, k=5, stats=stats)
        batcher = MicroBatcher(handler, max_batch_size=16, max_wait_ms=2.0, stats=stats)
        control = CatalogControl(catalog)
        server = SocketServer(batcher, stats=stats, control=control.handle).start()
        try:
            with socket.create_connection(server.address, timeout=30) as connection:
                reader = connection.makefile("r", encoding="utf-8")

                def ask(line):
                    connection.sendall((line + "\n").encode("utf-8"))
                    return reader.readline().strip()

                assert ask("model=alpha 0 3") == baselines["a"]["0 3"]
                assert ask("model=beta 0 3") == baselines["b"]["0 3"]
                payload = json.loads(ask(json.dumps({"symptoms": "0 3", "model": "beta"})))
                assert payload["model"] == "beta"
                names = [record["name"] for record in json.loads(ask("models"))]
                assert names == ["alpha", "beta"]
                assert ask(f"reload alpha {checkpoints['b']}").startswith("ok: alpha now v2")
                assert ask("model=alpha 0 3") == baselines["b"]["0 3"]
                assert ask("model=beta 0 3") == baselines["b"]["0 3"]  # bit-identical
                assert "models=" in ask("stats")
        finally:
            server.stop()
            batcher.close()
