"""Serving stack tests: protocol handler isolation and socket end-to-end.

The socket test drives N concurrent client threads against a real
:class:`~repro.serving.SocketServer` and asserts every response is
bit-identical to the sequential ``pipeline.recommend`` baseline — the
determinism guarantee the fixed-block scoring path provides — and that burst
load actually aggregated (``mean_batch_size > 1``).
"""

import socket
import threading

import pytest

from repro.serving import (
    LINE_TOO_LONG_RESPONSE,
    MAX_LINE_BYTES,
    MicroBatcher,
    RecommendationHandler,
    ServerStats,
    SocketServer,
    serve_lines,
)


def sequential_answer(pipeline, line, k=10):
    """The single-request baseline: what `repro predict` would print."""
    return " ".join(pipeline.decode_herbs(pipeline.recommend(line, k=k)))


class TestRecommendationHandler:
    def test_batch_matches_sequential(self, pipeline):
        handler = RecommendationHandler(pipeline, k=5)
        lines = ["0 3", "1 2 4", "2", "0 1 2 3"]
        assert handler(lines) == [sequential_answer(pipeline, line, k=5) for line in lines]

    def test_bad_token_isolated_from_batchmates(self, pipeline):
        handler = RecommendationHandler(pipeline, k=5)
        responses = handler(["0 3", "no_such_symptom", "1 2"])
        assert responses[0] == sequential_answer(pipeline, "0 3", k=5)
        assert responses[1] == "error: unknown symptom token 'no_such_symptom'"
        assert responses[2] == sequential_answer(pipeline, "1 2", k=5)

    def test_k_prefix_overrides_default(self, pipeline):
        handler = RecommendationHandler(pipeline, k=10)
        responses = handler(["k=2 0 3", "0 3"])
        assert responses[0] == sequential_answer(pipeline, "0 3", k=2)
        assert len(responses[0].split()) == 2
        assert len(responses[1].split()) == 10

    def test_bad_k_prefix_is_an_error_line(self, pipeline):
        handler = RecommendationHandler(pipeline, k=5)
        for bad in ("k=0 0 3", "k=-2 0 3", "k=abc 0 3"):
            assert handler([bad])[0].startswith("error: k must be a positive integer")

    def test_empty_line_is_an_error_line(self, pipeline):
        handler = RecommendationHandler(pipeline, k=5)
        assert handler(["   "])[0] == "error: no symptoms given"

    def test_scoring_failure_retried_per_request(self, pipeline, monkeypatch):
        handler = RecommendationHandler(pipeline, k=5)
        expected = {line: sequential_answer(pipeline, line, k=5) for line in ("0 3", "1 2")}
        real_recommend_many = pipeline.recommend_many

        def poisoned_many(sets, k):
            if len(sets) > 1:  # the batched call dies; per-request retries survive
                raise RuntimeError("batched scoring exploded")
            return real_recommend_many(sets, k=k)

        monkeypatch.setattr(pipeline, "recommend_many", poisoned_many)
        responses = handler(["0 3", "1 2"])
        assert responses == [expected["0 3"], expected["1 2"]]

    def test_poisoned_request_isolated_in_scoring_fallback(self, pipeline, monkeypatch):
        """Only the request whose scoring fails answers with ``error:``."""
        handler = RecommendationHandler(pipeline, k=5)
        expected = sequential_answer(pipeline, "0 3", k=5)
        real_recommend_many = pipeline.recommend_many

        def poisoned_many(sets, k):
            if any(set(s) == {1, 2} for s in sets):
                raise RuntimeError("poisoned request")
            return real_recommend_many(sets, k=k)

        monkeypatch.setattr(pipeline, "recommend_many", poisoned_many)
        responses = handler(["0 3", "1 2"])
        assert responses[0] == expected
        assert responses[1] == "error: poisoned request"

    def test_errors_recorded_in_stats(self, pipeline):
        stats = ServerStats()
        handler = RecommendationHandler(pipeline, k=5, stats=stats)
        handler(["0 3", "bogus_token"])
        assert stats.errors == 1

    def test_rejects_non_positive_default_k(self, pipeline):
        with pytest.raises(ValueError):
            RecommendationHandler(pipeline, k=0)


#: Parametrizes a test over the exact oracle and the approx retrieval tier.
BOTH_RETRIEVALS = pytest.mark.parametrize(
    "serving_pipeline", ["exact", "approx"], indirect=True, ids=["exact", "approx"]
)


class TestSocketServer:
    NUM_CLIENTS = 8
    ROUNDS = 3

    @pytest.fixture()
    def serving_stack(self, serving_pipeline):
        stats = ServerStats()
        handler = RecommendationHandler(serving_pipeline, k=5, stats=stats)
        batcher = MicroBatcher(handler, max_batch_size=64, max_wait_ms=25.0, stats=stats)
        server = SocketServer(batcher, stats=stats).start()
        stats.set_backend_info(serving_pipeline.engine.backend_status)
        yield server, stats
        stats.set_backend_info(None)
        server.stop()
        batcher.close()

    def _client(self, address, lines, out, index, barrier):
        with socket.create_connection(address, timeout=30) as connection:
            reader = connection.makefile("r", encoding="utf-8")
            answers = []
            for line in lines:
                barrier.wait(timeout=30)  # burst: every client fires together
                connection.sendall((line + "\n").encode("utf-8"))
                answers.append(reader.readline().strip())
            out[index] = answers

    @BOTH_RETRIEVALS
    def test_concurrent_clients_bit_identical_to_sequential(
        self, serving_pipeline, serving_stack
    ):
        pipeline = serving_pipeline  # baseline through the same retrieval mode
        server, stats = serving_stack
        queries = ["0 3", "1 2", "2 4 5", "0 1 2", "3", "1 4", "0 2 5", "2 3 4"]
        plans = [
            [queries[(client + round_) % len(queries)] for round_ in range(self.ROUNDS)]
            for client in range(self.NUM_CLIENTS)
        ]
        barrier = threading.Barrier(self.NUM_CLIENTS)
        responses = [None] * self.NUM_CLIENTS
        threads = [
            threading.Thread(
                target=self._client,
                args=(server.address, plans[i], responses, i, barrier),
            )
            for i in range(self.NUM_CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)

        expected = {query: sequential_answer(pipeline, query, k=5) for query in queries}
        for plan, answers in zip(plans, responses):
            assert answers is not None, "a client thread never finished"
            assert answers == [expected[query] for query in plan]
        assert stats.requests == self.NUM_CLIENTS * self.ROUNDS
        assert stats.mean_batch_size > 1, "burst load must actually aggregate"

    def test_stats_control_line(self, serving_stack):
        server, _ = serving_stack
        with socket.create_connection(server.address, timeout=10) as connection:
            reader = connection.makefile("r", encoding="utf-8")
            connection.sendall(b"0 3\nstats\n")
            assert reader.readline().strip().startswith("herb_")
            stats_line = reader.readline().strip()
        assert stats_line.startswith("requests=1 ")
        assert "mean_batch=" in stats_line

    def test_stats_control_line_reports_backend_topology(self, serving_stack):
        server, stats = serving_stack
        stats.set_backend_info(
            lambda: {"backend": "threads", "shards": 4, "workers": 2, "workers_alive": 2}
        )
        try:
            with socket.create_connection(server.address, timeout=10) as connection:
                reader = connection.makefile("r", encoding="utf-8")
                connection.sendall(b"stats\n")
                stats_line = reader.readline().strip()
        finally:
            stats.set_backend_info(None)
        assert "backend=threads" in stats_line
        assert "shards=4" in stats_line
        assert "workers_alive=2/2" in stats_line

    @pytest.mark.parametrize("serving_pipeline", ["approx"], indirect=True)
    def test_stats_control_line_reports_retrieval_counters(self, serving_stack):
        """The approx tier's counters reach operators through ``stats``."""
        server, _ = serving_stack
        with socket.create_connection(server.address, timeout=10) as connection:
            reader = connection.makefile("r", encoding="utf-8")
            connection.sendall(b"0 3\n1 2\nstats\n")
            assert reader.readline().strip().startswith("herb_")
            assert reader.readline().strip().startswith("herb_")
            stats_line = reader.readline().strip()
        assert "retrieval=approx" in stats_line
        assert "candidate_factor=2" in stats_line
        assert "approx_requests=" in stats_line
        assert "approx_fallbacks=" in stats_line
        assert "approx_pool_mean=" in stats_line

    def test_stats_control_line_reports_exact_retrieval_by_default(self, serving_stack):
        server, _ = serving_stack
        with socket.create_connection(server.address, timeout=10) as connection:
            reader = connection.makefile("r", encoding="utf-8")
            connection.sendall(b"stats\n")
            stats_line = reader.readline().strip()
        assert "retrieval=exact" in stats_line
        assert "approx_requests=" not in stats_line

    def test_error_response_keeps_connection_alive(self, serving_stack):
        server, _ = serving_stack
        with socket.create_connection(server.address, timeout=10) as connection:
            reader = connection.makefile("r", encoding="utf-8")
            connection.sendall(b"totally_bogus\n0 3\n")
            assert reader.readline().strip().startswith("error: unknown symptom token")
            assert reader.readline().strip().startswith("herb_")

    def test_stop_is_prompt_and_joins_accept_thread(self, pipeline):
        """Shutdown must wake the blocked accept(), not sit out the join timeout.

        Regression: on Linux, closing the listener does not unblock a thread
        already parked in accept(), so stop() used to stall for its full
        5-second join timeout on every server shutdown (and leave the accept
        thread behind, still blocked).
        """
        import time

        batcher = MicroBatcher(RecommendationHandler(pipeline, k=5), max_wait_ms=1.0)
        server = SocketServer(batcher).start()
        time.sleep(0.05)  # let the accept thread park in accept()
        started = time.monotonic()
        server.stop()
        elapsed = time.monotonic() - started
        batcher.close()
        assert elapsed < 2.0, f"stop() stalled {elapsed:.1f}s joining the accept thread"
        assert not server._accept_thread.is_alive()

    def test_stop_refuses_new_connections(self, pipeline):
        stats = ServerStats()
        batcher = MicroBatcher(RecommendationHandler(pipeline, k=5), max_wait_ms=1.0)
        server = SocketServer(batcher).start()
        address = server.address
        server.stop()
        batcher.close()
        # Either the connect is refused outright, or a race with the kernel's
        # listen backlog lets it establish — in which case it must never be
        # served (EOF instead of a response line).
        try:
            with socket.create_connection(address, timeout=2) as connection:
                connection.sendall(b"0 3\n")
                assert connection.makefile("r", encoding="utf-8").readline() == ""
        except OSError:
            pass

    def test_oversized_request_line_answered_and_closed(self, serving_stack):
        """A client streaming past MAX_LINE_BYTES without a newline gets one
        clear error line and a closed connection, not an OOM."""
        server, _ = serving_stack
        with socket.create_connection(server.address, timeout=10) as connection:
            reader = connection.makefile("r", encoding="utf-8")
            connection.sendall(b"a" * (MAX_LINE_BYTES + 10))
            assert reader.readline().strip() == LINE_TOO_LONG_RESPONSE
            assert reader.readline() == ""  # EOF: the connection was closed
        # the server itself keeps serving
        with socket.create_connection(server.address, timeout=10) as connection:
            reader = connection.makefile("r", encoding="utf-8")
            connection.sendall(b"0 3\n")
            assert reader.readline().strip().startswith("herb_")

    def test_request_line_at_the_bound_still_served(self, serving_stack):
        """Content of MAX_LINE_BYTES - 1 bytes (+ newline) is a legal line."""
        server, _ = serving_stack
        line = b"0 3" + b" " * (MAX_LINE_BYTES - 1 - 3) + b"\n"
        assert len(line) == MAX_LINE_BYTES
        with socket.create_connection(server.address, timeout=10) as connection:
            reader = connection.makefile("r", encoding="utf-8")
            connection.sendall(line)
            assert reader.readline().strip().startswith("herb_")

    def test_invalid_utf8_answered_and_closed(self, serving_stack):
        server, _ = serving_stack
        with socket.create_connection(server.address, timeout=10) as connection:
            reader = connection.makefile("r", encoding="utf-8")
            connection.sendall(b"\xff\xfe broken\n")
            assert reader.readline().strip() == "error: request is not valid UTF-8"
            assert reader.readline() == ""

    def test_connection_gauge_tracks_open_clients(self, serving_stack):
        server, stats = serving_stack
        with socket.create_connection(server.address, timeout=10) as connection:
            # close the reader too: an open makefile() keeps the socket fd
            # alive past the with-block, so the server would never see EOF
            with connection.makefile("r", encoding="utf-8") as reader:
                connection.sendall(b"0 3\n")
                reader.readline()
                assert stats.connections == 1
                assert "connections=1" in stats.to_line()
        deadline = threading.Event()
        for _ in range(100):  # the close is handled on the server thread
            if stats.connections == 0:
                break
            deadline.wait(0.05)
        assert stats.connections == 0

    def test_blank_line_closes_connection_but_not_server(self, serving_stack):
        server, _ = serving_stack
        with socket.create_connection(server.address, timeout=10) as connection:
            reader = connection.makefile("r", encoding="utf-8")
            connection.sendall(b"\n")
            assert reader.readline() == ""  # EOF: our side was closed
        with socket.create_connection(server.address, timeout=10) as connection:
            reader = connection.makefile("r", encoding="utf-8")
            connection.sendall(b"0 3\n")
            assert reader.readline().strip().startswith("herb_")
