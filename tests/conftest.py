"""Shared fixtures: a small deterministic synthetic corpus and its graphs."""

import numpy as np
import pytest

from repro.data import SyntheticTCMConfig, generate_corpus
from repro.graphs import SymptomHerbGraph, build_herb_synergy_graph, build_symptom_synergy_graph


@pytest.fixture(scope="session")
def tiny_corpus():
    """A 300-prescription corpus over 30 symptoms / 50 herbs (seeded)."""
    return generate_corpus(SyntheticTCMConfig.tiny(seed=11))


@pytest.fixture(scope="session")
def tiny_split(tiny_corpus):
    train, test = tiny_corpus.dataset.train_test_split(
        test_fraction=0.2, rng=np.random.default_rng(11)
    )
    return train, test


@pytest.fixture(scope="session")
def tiny_graphs(tiny_split):
    train, _ = tiny_split
    bipartite = SymptomHerbGraph.from_dataset(train)
    symptom_synergy = build_symptom_synergy_graph(train, threshold=2)
    herb_synergy = build_herb_synergy_graph(train, threshold=4)
    return bipartite, symptom_synergy, herb_synergy
