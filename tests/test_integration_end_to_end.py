"""End-to-end integration tests spanning data -> graphs -> model -> training -> evaluation."""

import numpy as np
import pytest

from repro.data import SyntheticTCMConfig, generate_corpus, load_corpus, save_corpus
from repro.evaluation import Evaluator
from repro.models import SMGCN, SMGCNConfig, PopularityRecommender
from repro.training import Trainer, TrainerConfig


@pytest.fixture(scope="module")
def pipeline_corpus():
    return generate_corpus(
        SyntheticTCMConfig(
            num_prescriptions=600,
            num_symptoms=40,
            num_herbs=80,
            num_syndromes=8,
            symptoms_per_syndrome=8,
            herbs_per_syndrome=12,
            num_base_herbs=4,
            seed=3,
        )
    )


class TestFullPipeline:
    def test_trained_smgcn_beats_popularity(self, pipeline_corpus):
        """The headline sanity requirement: the model learns symptom-herb structure."""
        train, test = pipeline_corpus.dataset.train_test_split(
            test_fraction=0.15, rng=np.random.default_rng(0)
        )
        model = SMGCN.from_dataset(
            train,
            SMGCNConfig(
                embedding_dim=16,
                layer_dims=(32, 32),
                symptom_threshold=2,
                herb_threshold=4,
                seed=0,
            ),
        )
        Trainer(
            TrainerConfig(epochs=40, batch_size=128, learning_rate=5e-3, weight_decay=1e-5, seed=0)
        ).fit(model, train)
        evaluator = Evaluator(test, ks=(5, 10))
        smgcn_result = evaluator.evaluate(model, name="SMGCN")
        popularity_result = evaluator.evaluate(
            PopularityRecommender(train.num_herbs).fit(train), name="Popularity"
        )
        assert smgcn_result.metric("p@5") > popularity_result.metric("p@5")
        assert smgcn_result.metric("ndcg@10") > popularity_result.metric("ndcg@10")

    def test_roundtrip_through_disk_preserves_metrics(self, pipeline_corpus, tmp_path):
        """Saving and reloading the corpus must not change evaluation results."""
        dataset = pipeline_corpus.dataset
        path = tmp_path / "corpus.tsv"
        save_corpus(dataset, path)
        reloaded = load_corpus(
            path, symptom_vocab=dataset.symptom_vocab, herb_vocab=dataset.herb_vocab
        )
        rng_a, rng_b = np.random.default_rng(1), np.random.default_rng(1)
        train_a, test_a = dataset.train_test_split(test_fraction=0.2, rng=rng_a)
        train_b, test_b = reloaded.train_test_split(test_fraction=0.2, rng=rng_b)
        assert train_a.symptom_sets() == train_b.symptom_sets()
        pop_a = Evaluator(test_a, ks=(5,)).evaluate(
            PopularityRecommender(train_a.num_herbs).fit(train_a)
        )
        pop_b = Evaluator(test_b, ks=(5,)).evaluate(
            PopularityRecommender(train_b.num_herbs).fit(train_b)
        )
        assert pop_a.metric("p@5") == pytest.approx(pop_b.metric("p@5"))

    def test_recommendations_respect_latent_syndromes(self, pipeline_corpus):
        """Recommended herbs should mostly come from the query's latent syndrome pools."""
        corpus = pipeline_corpus
        train, _ = corpus.dataset.train_test_split(test_fraction=0.15, rng=np.random.default_rng(0))
        model = SMGCN.from_dataset(
            train,
            SMGCNConfig(embedding_dim=16, layer_dims=(32, 32), symptom_threshold=2, herb_threshold=4, seed=0),
        )
        Trainer(
            TrainerConfig(epochs=30, batch_size=128, learning_rate=5e-3, weight_decay=1e-5, seed=0)
        ).fit(model, train)
        config = corpus.config
        in_pool = 0
        total = 0
        for index in range(0, 40):
            prescription = corpus.dataset[index]
            syndromes = corpus.prescription_syndromes[index]
            pool = set(range(config.num_base_herbs))
            for syndrome in syndromes:
                pool.update(corpus.syndrome_herbs[syndrome])
            for herb in model.recommend(prescription.symptoms, k=5):
                total += 1
                in_pool += herb in pool
        assert in_pool / total > 0.6
